//! LU factorization and explicit inversion of the block-diagonal `H11`.
//!
//! SlashBurn leaves `H11` block diagonal with blocks `H11_1 … H11_b`
//! (Figure 3(d)). Its LU factors — and their inverses — are block diagonal
//! too, so everything is done per block and assembled into two global
//! sparse triangular matrices `L1^{-1}`, `U1^{-1}` exactly as Algorithms 1
//! and 3 store them. The per-block cost is what Theorems 1–3 count as
//! `Σ n1i³`.
//!
//! Small blocks use dense no-pivot LU + dense triangular inversion (cheap,
//! no allocation churn); larger blocks (e.g. the final-GCC block) use the
//! sparse path of [`crate::sparse_lu`].

use crate::dense_lu::{invert_unit_lower, invert_upper, lu_nopivot};
use crate::sparse_lu::SparseLu;
use bepi_sparse::{Coo, Csr, MemBytes, Result, SparseError};

/// Block size at or below which the dense per-block path is used.
const DENSE_BLOCK_THRESHOLD: usize = 128;

/// Inverted LU factors of a block-diagonal matrix.
///
/// Applying the factors ([`BlockLu::solve_vec`]) is two SpMVs whose row
/// partitions respect the block structure, so the forward/backward solves
/// parallelize per block through the row-partitioned SpMV kernel.
///
/// ```
/// use bepi_solver::BlockLu;
/// use bepi_sparse::Coo;
///
/// // Two diagonal blocks: [2.0] and [[4, 0], [1, 2]].
/// let mut coo = Coo::new(3, 3).unwrap();
/// coo.push(0, 0, 2.0).unwrap();
/// coo.push(1, 1, 4.0).unwrap();
/// coo.push(2, 1, 1.0).unwrap();
/// coo.push(2, 2, 2.0).unwrap();
/// let a = coo.to_csr();
///
/// let lu = BlockLu::factor(&a, &[1, 2]).unwrap();
/// let x = lu.solve_vec(&[2.0, 4.0, 3.0]).unwrap(); // solves A x = b
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct BlockLu {
    /// Global `L1^{-1}` (unit-lower-triangular, block diagonal), CSR.
    pub l_inv: Csr,
    /// Global `U1^{-1}` (upper-triangular, block diagonal), CSR.
    pub u_inv: Csr,
    /// The block sizes used for the factorization.
    pub block_sizes: Vec<usize>,
}

impl BlockLu {
    /// Factors and inverts a block-diagonal matrix given its block sizes
    /// (which must tile the dimension; entries crossing blocks are a bug
    /// in the caller and are rejected via per-block extraction checks in
    /// debug builds).
    pub fn factor(a: &Csr, block_sizes: &[usize]) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: a.shape(),
                op: "BlockLu::factor (matrix must be square)",
            });
        }
        if block_sizes.iter().sum::<usize>() != n {
            return Err(SparseError::VectorLength {
                expected: n,
                actual: block_sizes.iter().sum(),
            });
        }
        debug_assert!(
            bepi_reorder_check(a, block_sizes),
            "matrix entries cross declared diagonal blocks"
        );

        // Estimate capacity: inverse factors are at least as dense as the
        // original blocks.
        let mut l_coo = Coo::with_capacity(n, n, a.nnz() + n)?;
        let mut u_coo = Coo::with_capacity(n, n, a.nnz() + n)?;
        let mut start = 0usize;
        for &size in block_sizes {
            let range = start..start + size;
            if size == 1 {
                // 1×1 block: L^{-1} = [1], U^{-1} = [1/a].
                let d = a.get(start, start);
                if d == 0.0 {
                    return Err(SparseError::ZeroDiagonal { row: start });
                }
                l_coo.push(start, start, 1.0)?;
                u_coo.push(start, start, 1.0 / d)?;
            } else if size <= DENSE_BLOCK_THRESHOLD {
                let block = a.slice_block(range.clone(), range.clone())?.to_dense();
                let (l, u) = lu_nopivot(&block)?;
                let li = invert_unit_lower(&l);
                let ui = invert_upper(&u)?;
                for i in 0..size {
                    for j in 0..size {
                        let lv = li[(i, j)];
                        if lv != 0.0 {
                            l_coo.push(start + i, start + j, lv)?;
                        }
                        let uv = ui[(i, j)];
                        if uv != 0.0 {
                            u_coo.push(start + i, start + j, uv)?;
                        }
                    }
                }
            } else {
                let block = a.slice_block(range.clone(), range.clone())?;
                let lu = SparseLu::factor(&bepi_sparse::Csc::from_csr(&block))?;
                let (linv, uinv) = lu.invert_factors();
                for (r, c, v) in linv.to_csr().iter() {
                    l_coo.push(start + r, start + c, v)?;
                }
                for (r, c, v) in uinv.to_csr().iter() {
                    u_coo.push(start + r, start + c, v)?;
                }
            }
            start += size;
        }
        Ok(Self {
            l_inv: l_coo.to_csr(),
            u_inv: u_coo.to_csr(),
            block_sizes: block_sizes.to_vec(),
        })
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.l_inv.nrows()
    }

    /// Applies `A^{-1} x = U^{-1}(L^{-1} x)` — two SpMVs, as in the
    /// paper's query phase (Algorithm 2 line 5, Algorithm 4 line 5).
    pub fn solve_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let t = self.l_inv.mul_vec(x)?;
        self.u_inv.mul_vec(&t)
    }

    /// Applies `A^{-1}` to a sparse matrix:
    /// `U^{-1}(L^{-1} B)` via two SpGEMMs — the Schur-complement
    /// construction of Algorithm 1 line 6.
    pub fn solve_matrix(&self, b: &Csr) -> Result<Csr> {
        let t = bepi_sparse::spgemm(&self.l_inv, b)?;
        bepi_sparse::spgemm(&self.u_inv, &t)
    }

    /// Largest block size (diagnostics; the final-GCC block dominates).
    pub fn max_block(&self) -> usize {
        self.block_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Parallel variant of [`BlockLu::factor`]: the diagonal blocks are
    /// independent, so they are factored and inverted across `threads`
    /// worker threads. Produces bit-identical output to the serial path
    /// (each block's computation is unchanged; assembly order is fixed).
    pub fn factor_parallel(a: &Csr, block_sizes: &[usize], threads: usize) -> Result<Self> {
        if threads <= 1 || block_sizes.len() <= 1 {
            return Self::factor(a, block_sizes);
        }
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: a.shape(),
                op: "BlockLu::factor_parallel (matrix must be square)",
            });
        }
        if block_sizes.iter().sum::<usize>() != n {
            return Err(SparseError::VectorLength {
                expected: n,
                actual: block_sizes.iter().sum(),
            });
        }
        // Block start offsets, plus a cumulative cost proxy (size³, the
        // per-block factor cost of Theorems 1–3) for load balancing.
        let mut starts = Vec::with_capacity(block_sizes.len());
        let mut cost_prefix = Vec::with_capacity(block_sizes.len() + 1);
        cost_prefix.push(0usize);
        let mut acc = 0usize;
        let mut cost = 0usize;
        for &s in block_sizes {
            starts.push(acc);
            acc += s;
            cost = cost.saturating_add(s.saturating_mul(s).saturating_mul(s));
            cost_prefix.push(cost);
        }
        // Hand each thread a contiguous, cost-balanced run of blocks; each
        // returns per-block factor matrices in block order.
        let ranges = bepi_par::balanced_ranges(&cost_prefix, threads.min(block_sizes.len()));
        type BlockOut = Result<Vec<(usize, Csr, Csr)>>;
        let results: Vec<BlockOut> = bepi_par::par_join(
            ranges
                .iter()
                .map(|r| {
                    let r = r.clone();
                    let starts = &starts;
                    move || -> BlockOut {
                        let mut out = Vec::with_capacity(r.len());
                        for bi in r {
                            let start = starts[bi];
                            let size = block_sizes[bi];
                            let range = start..start + size;
                            let block = a.slice_block(range.clone(), range)?;
                            let single = Self::factor(&block, &[size])?;
                            out.push((start, single.l_inv, single.u_inv));
                        }
                        Ok(out)
                    }
                })
                .collect(),
        );

        let mut l_coo = bepi_sparse::Coo::with_capacity(n, n, a.nnz() + n)?;
        let mut u_coo = bepi_sparse::Coo::with_capacity(n, n, a.nnz() + n)?;
        for chunk_result in results {
            for (start, l_inv, u_inv) in chunk_result? {
                for (r, c, v) in l_inv.iter() {
                    l_coo.push(start + r, start + c, v)?;
                }
                for (r, c, v) in u_inv.iter() {
                    u_coo.push(start + r, start + c, v)?;
                }
            }
        }
        Ok(Self {
            l_inv: l_coo.to_csr(),
            u_inv: u_coo.to_csr(),
            block_sizes: block_sizes.to_vec(),
        })
    }

    /// KLU-style partial refactorization: re-factors only the listed
    /// dirty diagonal blocks of `a_new` and copies every other block's
    /// inverse-factor rows verbatim from `self`.
    ///
    /// The caller must guarantee that `a_new` has the same block
    /// structure as the original matrix and that every block *not*
    /// listed in `dirty_blocks` is numerically unchanged — under that
    /// contract the result is bit-identical to `BlockLu::factor(a_new,
    /// block_sizes)` at a fraction of the cost (each clean block skips
    /// its `O(size³)` factor/invert).
    pub fn refactor_blocks(&self, a_new: &Csr, dirty_blocks: &[usize]) -> Result<Self> {
        let n = self.n();
        if a_new.nrows() != n || a_new.ncols() != n {
            return Err(SparseError::ShapeMismatch {
                left: a_new.shape(),
                right: (n, n),
                op: "BlockLu::refactor_blocks",
            });
        }
        let mut dirty = vec![false; self.block_sizes.len()];
        for &b in dirty_blocks {
            if b >= dirty.len() {
                return Err(SparseError::IndexOutOfBounds {
                    index: (b, b),
                    shape: (dirty.len(), dirty.len()),
                });
            }
            dirty[b] = true;
        }
        debug_assert!(
            bepi_reorder_check(a_new, &self.block_sizes),
            "matrix entries cross declared diagonal blocks"
        );
        let mut l_coo = Coo::with_capacity(n, n, a_new.nnz() + n)?;
        let mut u_coo = Coo::with_capacity(n, n, a_new.nnz() + n)?;
        let mut start = 0usize;
        for (bi, &size) in self.block_sizes.iter().enumerate() {
            if dirty[bi] {
                let range = start..start + size;
                let block = a_new.slice_block(range.clone(), range)?;
                let single = Self::factor(&block, &[size])?;
                for (r, c, v) in single.l_inv.iter() {
                    l_coo.push(start + r, start + c, v)?;
                }
                for (r, c, v) in single.u_inv.iter() {
                    u_coo.push(start + r, start + c, v)?;
                }
            } else {
                for i in start..start + size {
                    let (cols, vals) = self.l_inv.row(i);
                    for (p, &c) in cols.iter().enumerate() {
                        l_coo.push(i, c as usize, vals[p])?;
                    }
                    let (cols, vals) = self.u_inv.row(i);
                    for (p, &c) in cols.iter().enumerate() {
                        u_coo.push(i, c as usize, vals[p])?;
                    }
                }
            }
            start += size;
        }
        Ok(Self {
            l_inv: l_coo.to_csr(),
            u_inv: u_coo.to_csr(),
            block_sizes: self.block_sizes.clone(),
        })
    }

    /// Reassembles a `BlockLu` from previously computed inverse factors
    /// (persistence support). Validates shapes and triangularity.
    pub fn from_inverse_factors(l_inv: Csr, u_inv: Csr, block_sizes: Vec<usize>) -> Result<Self> {
        let n = l_inv.nrows();
        if l_inv.ncols() != n || u_inv.nrows() != n || u_inv.ncols() != n {
            return Err(SparseError::ShapeMismatch {
                left: l_inv.shape(),
                right: u_inv.shape(),
                op: "BlockLu::from_inverse_factors",
            });
        }
        if block_sizes.iter().sum::<usize>() != n {
            return Err(SparseError::VectorLength {
                expected: n,
                actual: block_sizes.iter().sum(),
            });
        }
        if l_inv.iter().any(|(r, c, _)| r < c) {
            return Err(SparseError::Parse("L^{-1} must be lower triangular".into()));
        }
        if u_inv.iter().any(|(r, c, _)| r > c) {
            return Err(SparseError::Parse("U^{-1} must be upper triangular".into()));
        }
        Ok(Self {
            l_inv,
            u_inv,
            block_sizes,
        })
    }

    /// Like [`BlockLu::from_inverse_factors`] but skips the `O(nnz)`
    /// triangularity scans — the load path for memory-mapped indexes,
    /// where scanning every entry would fault the whole file in and make
    /// open time proportional to index size. The factors are trusted
    /// because persisted sections are covered by CRCs; debug builds still
    /// run the full scans.
    pub fn from_inverse_factors_trusted(
        l_inv: Csr,
        u_inv: Csr,
        block_sizes: Vec<usize>,
    ) -> Result<Self> {
        let n = l_inv.nrows();
        if l_inv.ncols() != n || u_inv.nrows() != n || u_inv.ncols() != n {
            return Err(SparseError::ShapeMismatch {
                left: l_inv.shape(),
                right: u_inv.shape(),
                op: "BlockLu::from_inverse_factors_trusted",
            });
        }
        if block_sizes.iter().sum::<usize>() != n {
            return Err(SparseError::VectorLength {
                expected: n,
                actual: block_sizes.iter().sum(),
            });
        }
        debug_assert!(
            l_inv.iter().all(|(r, c, _)| r >= c),
            "L^-1 must be lower triangular"
        );
        debug_assert!(
            u_inv.iter().all(|(r, c, _)| r <= c),
            "U^-1 must be upper triangular"
        );
        Ok(Self {
            l_inv,
            u_inv,
            block_sizes,
        })
    }

    /// Bytes of heap memory held by the factors.
    pub fn heap_bytes(&self) -> usize {
        self.l_inv.heap_bytes()
            + self.u_inv.heap_bytes()
            + std::mem::size_of_val(self.block_sizes.as_slice())
    }

    /// Bytes served zero-copy from a mapped index file.
    pub fn mapped_bytes(&self) -> usize {
        self.l_inv.mapped_bytes() + self.u_inv.mapped_bytes()
    }
}

impl MemBytes for BlockLu {
    fn mem_bytes(&self) -> usize {
        self.l_inv.mem_bytes() + self.u_inv.mem_bytes()
    }
}

fn bepi_reorder_check(a: &Csr, block_sizes: &[usize]) -> bool {
    let mut block_of = vec![0u32; a.nrows()];
    let mut start = 0usize;
    for (bi, &size) in block_sizes.iter().enumerate() {
        for i in start..start + size {
            block_of[i] = bi as u32;
        }
        start += size;
    }
    a.iter().all(|(r, c, _)| block_of[r] == block_of[c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::{Coo, Dense};

    /// Block-diagonal, diagonally dominant test matrix:
    /// blocks of sizes [2, 1, 3].
    fn sample() -> (Csr, Vec<usize>) {
        let mut coo = Coo::new(6, 6).unwrap();
        // Block 0 (rows 0-1)
        coo.push(0, 0, 3.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -0.5).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        // Block 1 (row 2)
        coo.push(2, 2, 4.0).unwrap();
        // Block 2 (rows 3-5)
        coo.push(3, 3, 5.0).unwrap();
        coo.push(3, 4, 1.0).unwrap();
        coo.push(4, 4, 3.0).unwrap();
        coo.push(4, 5, -1.0).unwrap();
        coo.push(5, 3, 0.5).unwrap();
        coo.push(5, 5, 6.0).unwrap();
        (coo.to_csr(), vec![2, 1, 3])
    }

    #[test]
    fn solve_vec_matches_dense_inverse() {
        let (a, blocks) = sample();
        let blu = BlockLu::factor(&a, &blocks).unwrap();
        let dense_inv = crate::dense_lu::DenseLu::factor(&a.to_dense())
            .unwrap()
            .inverse()
            .unwrap();
        let x = vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0];
        let got = blu.solve_vec(&x).unwrap();
        let want = dense_inv.mul_vec(&x).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn inverse_factors_are_triangular_and_block_confined() {
        let (a, blocks) = sample();
        let blu = BlockLu::factor(&a, &blocks).unwrap();
        for (r, c, _) in blu.l_inv.iter() {
            assert!(r >= c, "L^-1 must be lower triangular");
        }
        for (r, c, _) in blu.u_inv.iter() {
            assert!(r <= c, "U^-1 must be upper triangular");
        }
        assert!(bepi_reorder_check(&blu.l_inv, &blocks));
        assert!(bepi_reorder_check(&blu.u_inv, &blocks));
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let (a, blocks) = sample();
        let blu = BlockLu::factor(&a, &blocks).unwrap();
        // Sparse RHS with two columns.
        let mut bcoo = Coo::new(6, 2).unwrap();
        bcoo.push(0, 0, 1.0).unwrap();
        bcoo.push(4, 1, -2.0).unwrap();
        bcoo.push(5, 0, 3.0).unwrap();
        let b = bcoo.to_csr();
        let x = blu.solve_matrix(&b).unwrap();
        let bd = b.to_dense();
        for j in 0..2 {
            let col: Vec<f64> = (0..6).map(|i| bd[(i, j)]).collect();
            let want = blu.solve_vec(&col).unwrap();
            for i in 0..6 {
                assert!((x.get(i, j) - want[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn large_block_uses_sparse_path() {
        // One 200-node diagonally dominant tridiagonal block (> threshold).
        let n = 200;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 3.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let blu = BlockLu::factor(&a, &[n]).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let got = blu.solve_vec(&b).unwrap();
        for (g, w) in got.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn all_singleton_blocks() {
        let mut coo = Coo::new(3, 3).unwrap();
        for i in 0..3 {
            coo.push(i, i, (i + 1) as f64).unwrap();
        }
        let a = coo.to_csr();
        let blu = BlockLu::factor(&a, &[1, 1, 1]).unwrap();
        let got = blu.solve_vec(&[2.0, 2.0, 3.0]).unwrap();
        assert_eq!(got, vec![2.0, 1.0, 1.0]);
    }

    #[test]
    fn parallel_factor_is_bit_identical_to_serial() {
        // Many independent blocks of mixed sizes.
        let mut coo = Coo::new(60, 60).unwrap();
        let mut sizes = Vec::new();
        let mut at = 0usize;
        for (i, size) in [1usize, 3, 2, 5, 1, 4, 6, 2, 3, 5, 7, 1, 4, 6, 10]
            .iter()
            .enumerate()
        {
            let size = *size;
            for r in 0..size {
                let mut off = 0.0;
                for c in 0..size {
                    if r != c {
                        let v = 0.1 + ((i + r + c) % 4) as f64 * 0.05;
                        coo.push(at + r, at + c, -v).unwrap();
                        off += v;
                    }
                }
                coo.push(at + r, at + r, off + 1.0).unwrap();
            }
            sizes.push(size);
            at += size;
        }
        let a = coo.to_csr();
        let serial = BlockLu::factor(&a, &sizes).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let par = BlockLu::factor_parallel(&a, &sizes, threads).unwrap();
            assert_eq!(par.l_inv, serial.l_inv, "threads {threads}");
            assert_eq!(par.u_inv, serial.u_inv, "threads {threads}");
        }
    }

    #[test]
    fn refactor_blocks_is_bit_identical_to_full_factor() {
        let (a, blocks) = sample();
        let lu = BlockLu::factor(&a, &blocks).unwrap();
        // Rescale block 2 (rows 3-5) only; blocks 0 and 1 stay untouched.
        let mut coo = Coo::new(6, 6).unwrap();
        for (r, c, v) in a.iter() {
            let v = if r >= 3 { v * 1.5 } else { v };
            coo.push(r, c, v).unwrap();
        }
        let a_new = coo.to_csr();
        let got = lu.refactor_blocks(&a_new, &[2]).unwrap();
        let want = BlockLu::factor(&a_new, &blocks).unwrap();
        assert_eq!(got.l_inv, want.l_inv);
        assert_eq!(got.u_inv, want.u_inv);
        assert_eq!(got.block_sizes, blocks);
    }

    #[test]
    fn refactor_blocks_with_no_dirty_blocks_copies_factors() {
        let (a, blocks) = sample();
        let lu = BlockLu::factor(&a, &blocks).unwrap();
        let got = lu.refactor_blocks(&a, &[]).unwrap();
        assert_eq!(got.l_inv, lu.l_inv);
        assert_eq!(got.u_inv, lu.u_inv);
    }

    #[test]
    fn refactor_blocks_rejects_bad_inputs() {
        let (a, blocks) = sample();
        let lu = BlockLu::factor(&a, &blocks).unwrap();
        assert!(lu.refactor_blocks(&Csr::zeros(4, 4), &[0]).is_err());
        assert!(
            lu.refactor_blocks(&a, &[7]).is_err(),
            "block id out of range"
        );
    }

    #[test]
    fn parallel_factor_single_thread_degenerates() {
        let (a, blocks) = sample();
        let p = BlockLu::factor_parallel(&a, &blocks, 1).unwrap();
        let s = BlockLu::factor(&a, &blocks).unwrap();
        assert_eq!(p.l_inv, s.l_inv);
    }

    #[test]
    fn parallel_factor_rejects_bad_blocks() {
        let (a, _) = sample();
        assert!(BlockLu::factor_parallel(&a, &[2, 2], 4).is_err());
    }

    #[test]
    fn zero_diagonal_singleton_rejected() {
        let a = Csr::zeros(2, 2);
        assert!(BlockLu::factor(&a, &[1, 1]).is_err());
    }

    #[test]
    fn bad_block_sizes_rejected() {
        let (a, _) = sample();
        assert!(BlockLu::factor(&a, &[2, 2]).is_err()); // sums to 4 ≠ 6
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::zeros(0, 0);
        let blu = BlockLu::factor(&a, &[]).unwrap();
        assert_eq!(blu.solve_vec(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn identity_inverse_is_identity() {
        let a = Csr::identity(5);
        let blu = BlockLu::factor(&a, &[1; 5]).unwrap();
        let i = Dense::identity(5);
        let li = blu.l_inv.to_dense();
        let ui = blu.u_inv.to_dense();
        assert!(li.max_abs_diff(&i).unwrap() < 1e-15);
        assert!(ui.max_abs_diff(&i).unwrap() < 1e-15);
    }
}
