//! Worker pool: request handling on top of the admission queue.
//!
//! Each worker owns nothing mutable — the served index snapshot, the
//! response cache, and the metrics are all shared read-only /
//! atomically, so the pool scales like `bepi_core::batch` does: the
//! query phase is embarrassingly parallel over a read-only index.
//!
//! Queries resolve the [`bepi_live::LiveEngine`]'s current snapshot
//! *once* per request and hold that `Arc` for the request's whole
//! lifetime: seed validation, the solve, the cache key, and the
//! `X-Graph-Version` response header all come from the same epoch even
//! if a rebuild hot-swaps the index mid-request.

use crate::cache::{QueryKey, ResponseCache, ResponseMode};
use crate::http::{self, ParseError, Request};
use crate::metrics::{render_live_metrics, render_obs_metrics, LiveMetricsSample, Metrics};
use crate::slowlog::{SlowQuery, SlowQueryLog};
use crate::trace::{TraceLog, TracedQuery};
use bepi_core::rwr::RwrSolver;
use bepi_core::EdgeUpdate;
use bepi_live::LiveEngine;
use bepi_obs::trace::{RequestId, TraceEvent, TraceExporter};
use bepi_sparse::SparseError;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default `top` when the query string omits it.
pub const DEFAULT_TOP_K: usize = 10;

/// Which admission lane a connection came through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The main bounded admission queue: full service.
    Normal,
    /// The degraded overflow lane: the main queue was full, so this
    /// connection gets only what the approximate engine can answer
    /// cheaply — `GET /query` with a mode that permits approximation.
    /// Everything else is shed exactly as if the overflow lane did not
    /// exist.
    Degraded,
}

/// One accepted connection waiting for service. The deadline is stamped
/// at *admission*, so time spent waiting in the queue counts against it.
pub struct Job {
    /// The accepted client connection.
    pub stream: TcpStream,
    /// Absolute deadline for finishing this request.
    pub deadline: Instant,
    /// When the connection was admitted — queue wait and the end-to-end
    /// latency reported by `?trace=1` and the slow-query log both start
    /// here.
    pub accepted_at: Instant,
    /// Which admission lane accepted the connection.
    pub lane: Lane,
}

/// Everything a worker needs, shared across the pool.
pub struct WorkerContext {
    /// The live engine holding the served snapshot (and, in live mode,
    /// the WAL + rebuild worker behind the admin endpoints).
    pub engine: Arc<LiveEngine>,
    /// Rendered-response LRU.
    pub cache: Arc<ResponseCache>,
    /// Exported counters.
    pub metrics: Arc<Metrics>,
    /// Ring buffer behind `GET /debug/slow`.
    pub slow_log: Arc<SlowQueryLog>,
    /// Main-queue depth at which `mode=auto` queries start routing to
    /// the approximate lane (`ceil(pressure × queue_depth)`). Zero means
    /// every `auto` query is served approximately when the engine
    /// exists — the deterministic hook CI uses.
    pub pressure_slots: u64,
    /// Per-request deadline budget; re-armed for every request served
    /// over one keep-alive connection.
    pub timeout: Duration,
    /// Graceful-shutdown flag: keep-alive connections are closed after
    /// the in-flight request once shutdown is requested, so persistent
    /// router connections cannot stall the drain.
    pub shutdown: Arc<crate::shutdown::Shutdown>,
    /// This daemon's shard id rendered for the `X-Shard` response
    /// header (`None` outside a sharded fleet). The `bepi route` front
    /// tier uses it to attribute responses to shard processes.
    pub shard: Option<String>,
    /// Numeric form of the shard id, stamped into slowlog and trace-ring
    /// records so fleet-wide correlation does not re-parse the header.
    pub shard_id: Option<u64>,
    /// Ring buffer behind `GET /debug/trace`: the most recent `?trace=1`
    /// queries with their per-stage timings.
    pub trace_log: Arc<TraceLog>,
    /// Chrome trace-event exporter (`--trace-export`); `None` disables
    /// export. Only traced (`?trace=1`) requests are exported, so the
    /// untraced hot path never touches the file.
    pub exporter: Option<Arc<TraceExporter>>,
    /// Live count of dedicated keep-alive connection threads, bounded
    /// by [`WorkerContext::keepalive_cap`].
    pub keepalive_threads: AtomicUsize,
    /// Maximum concurrent persistent connections. Beyond the cap a
    /// kept-alive connection is closed after its response — dropping an
    /// idle persistent socket is exactly what pooled clients recover
    /// from (they retry on a fresh connection).
    pub keepalive_cap: usize,
}

impl WorkerContext {
    /// The `X-Shard` header pair, when this daemon has a shard id.
    fn shard_header(&self) -> Option<(&'static str, &str)> {
        self.shard.as_deref().map(|s| ("X-Shard", s))
    }
}

/// Worker main loop: drains the admission queue until it is closed *and*
/// empty, which is exactly the graceful-shutdown drain semantics. Runs
/// both the normal pool and the degraded overflow worker (the job's
/// [`Lane`] carries the difference; the queue-depth gauge tracks the
/// main queue only).
pub fn worker_loop(rx: crate::queue::Consumer<Job>, ctx: Arc<WorkerContext>) {
    while let Some(job) = rx.pop() {
        if job.lane == Lane::Normal {
            ctx.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        ctx.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        // A panic while serving one connection must not kill the worker:
        // the stream is dropped (client sees a reset), the panic is
        // counted, and the loop continues.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_connection(job, &ctx);
        }));
        if result.is_err() {
            Metrics::inc(&ctx.metrics.server_errors_total);
        }
        ctx.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn remaining(deadline: Instant) -> Option<Duration> {
    let now = Instant::now();
    if now >= deadline {
        None
    } else {
        Some(deadline - now)
    }
}

/// What [`serve_one`] decided about the connection after one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    /// Drop the stream; the response (if any) said `Connection: close`.
    Close,
    /// The request opted into keep-alive and was answered with
    /// `Connection: keep-alive`; read the next request off the same
    /// stream with a fresh deadline.
    KeepAlive,
}

fn handle_connection(job: Job, ctx: &Arc<WorkerContext>) {
    let Job {
        stream,
        deadline,
        accepted_at,
        lane,
    } = job;
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    match serve_one(
        &stream,
        &mut reader,
        deadline,
        accepted_at,
        lane,
        false,
        ctx,
    ) {
        Served::Close => {}
        // Hand the persistent connection to a dedicated thread and
        // return this worker to the admission queue. A keep-alive
        // connection parked on a pool worker would starve fresh
        // connections outright: the pool is sized to CPU, persistent
        // connections are sized to clients, and one idle router socket
        // must never block admission (on a 1-core box the pool is a
        // single worker).
        Served::KeepAlive => persist_connection(stream, reader, lane, ctx),
    }
}

/// Moves a kept-alive connection onto a `bepi-keepalive` thread, bounded
/// by `ctx.keepalive_cap`. At the cap (or if the spawn fails) the stream
/// is simply dropped — legal for a server at any idle point, and pooled
/// clients retry on a fresh connection.
fn persist_connection(
    stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    lane: Lane,
    ctx: &Arc<WorkerContext>,
) {
    let mut current = ctx.keepalive_threads.load(Ordering::Relaxed);
    loop {
        if current >= ctx.keepalive_cap {
            return;
        }
        match ctx.keepalive_threads.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(now) => current = now,
        }
    }
    let thread_ctx = Arc::clone(ctx);
    let spawned = std::thread::Builder::new()
        .name("bepi-keepalive".to_string())
        .spawn(move || {
            let ctx = thread_ctx;
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                loop {
                    // Keep-alive connections must not stall the graceful
                    // drain: once shutdown is requested the connection is
                    // dropped after the in-flight request (a dropped idle
                    // connection is exactly what pooled clients handle).
                    if ctx.shutdown.is_requested() {
                        return;
                    }
                    // Each request on the connection gets a fresh budget;
                    // queue wait is zero because it never went through
                    // admission again.
                    let now = Instant::now();
                    let deadline = now + ctx.timeout;
                    match serve_one(&stream, &mut reader, deadline, now, lane, true, &ctx) {
                        Served::Close => return,
                        Served::KeepAlive => {}
                    }
                }
            }));
            if result.is_err() {
                Metrics::inc(&ctx.metrics.server_errors_total);
            }
            ctx.keepalive_threads.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        // The closure never ran, so its decrement never will: undo the
        // reservation here and let the stream drop (connection closes).
        ctx.keepalive_threads.fetch_sub(1, Ordering::AcqRel);
        bepi_obs::warn!(
            "server",
            "keep-alive thread spawn failed; closing connection"
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_one(
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
    accepted_at: Instant,
    lane: Lane,
    subsequent: bool,
    ctx: &WorkerContext,
) -> Served {
    let started = Instant::now();

    // Deadline may already have expired while the job sat in the queue.
    let Some(budget) = remaining(deadline) else {
        Metrics::inc(&ctx.metrics.timeouts_total);
        respond(
            stream,
            504,
            "application/json",
            &[],
            &http::json_error_body("deadline expired while queued"),
        );
        return Served::Close;
    };
    // The socket timeouts enforce the remaining budget on slow clients.
    let _ = stream.set_read_timeout(Some(budget));
    let _ = stream.set_write_timeout(Some(budget.max(Duration::from_secs(1))));

    let request = match http::read_request(reader) {
        Ok(r) => r,
        // On a kept-alive connection, EOF or an idle timeout before the
        // next request is the *normal* end of the connection — not a
        // client error, not a server timeout.
        Err(ParseError::Io(_)) if subsequent => return Served::Close,
        Err(ParseError::Malformed(m)) if subsequent && m == "empty request" => {
            return Served::Close;
        }
        Err(ParseError::TooLarge) => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                431,
                "application/json",
                &[],
                &http::json_error_body("request head too large"),
            );
            return Served::Close;
        }
        Err(ParseError::BodyTooLarge) => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                413,
                "application/json",
                &[],
                &http::json_error_body("request body too large"),
            );
            return Served::Close;
        }
        Err(ParseError::Malformed(m)) => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                400,
                "application/json",
                &[],
                &http::json_error_body(&m),
            );
            return Served::Close;
        }
        Err(ParseError::Io(_)) => {
            // Client vanished or stalled past its budget; nothing to say.
            Metrics::inc(&ctx.metrics.timeouts_total);
            return Served::Close;
        }
    };
    Metrics::inc(&ctx.metrics.requests_total);

    // Keep-alive is honored only on the normal lane: the single degraded
    // worker must never be pinned to one persistent connection while the
    // daemon is saturated.
    let keep_alive = request.keep_alive && lane == Lane::Normal;

    // The degraded lane exists solely to keep `/query` answerable via the
    // approximate engine while the main queue is saturated. Anything else
    // is shed exactly as if the overflow lane were not there.
    if lane == Lane::Degraded
        && (request.method.as_str(), request.path.as_str()) != ("GET", "/query")
    {
        Metrics::inc(&ctx.metrics.rejected_total);
        respond(
            stream,
            503,
            "application/json",
            &[("Retry-After", "1")],
            &http::json_error_body("overloaded: only GET /query is served on the degraded lane"),
        );
        return Served::Close;
    }

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let mut headers: Vec<(&str, &str)> = Vec::new();
            headers.extend(ctx.shard_header());
            respond_conn(stream, 200, "text/plain", &headers, "ok\n", keep_alive);
            kept(keep_alive)
        }
        ("GET", "/metrics") => {
            let engine = &ctx.engine;
            let mut body = ctx.metrics.render();
            let snapshot = engine.current();
            body.push_str(&render_live_metrics(&LiveMetricsSample {
                version: snapshot.version,
                pending: engine.pending_len(),
                rebuilds: engine.rebuilds(),
                updates: engine.updates_accepted(),
                last_rebuild_seconds: engine.last_rebuild_micros() as f64 / 1e6,
                index_heap_bytes: snapshot.bepi.heap_bytes(),
                index_mapped_bytes: snapshot.bepi.mapped_bytes(),
                numeric_rebuilds: engine.numeric_rebuilds(),
                structural_rebuilds: engine.structural_rebuilds(),
                numeric_rebuild_seconds: engine.numeric_rebuild_seconds(),
                full_rebuild_seconds: engine.full_rebuild_seconds(),
            }));
            body.push_str(&render_obs_metrics());
            let mut headers: Vec<(&str, &str)> = Vec::new();
            headers.extend(ctx.shard_header());
            respond_conn(
                stream,
                200,
                "text/plain; version=0.0.4",
                &headers,
                &body,
                keep_alive,
            );
            kept(keep_alive)
        }
        ("GET", "/query") => handle_query(
            stream,
            &request,
            ctx,
            deadline,
            accepted_at,
            started,
            lane,
            keep_alive,
        ),
        ("GET", "/version") => handle_version(stream, ctx, keep_alive),
        ("GET", "/debug/slow") => {
            respond_conn(
                stream,
                200,
                "application/json",
                &[],
                &ctx.slow_log.render_json(),
                keep_alive,
            );
            kept(keep_alive)
        }
        ("GET", "/debug/trace") => {
            respond_conn(
                stream,
                200,
                "application/json",
                &[],
                &ctx.trace_log.render_json(),
                keep_alive,
            );
            kept(keep_alive)
        }
        ("POST", "/edges") => {
            handle_edges(stream, &request, ctx);
            Served::Close
        }
        ("POST", "/rebuild") => {
            handle_rebuild(stream, ctx);
            Served::Close
        }
        (_, "/healthz" | "/metrics" | "/query" | "/version" | "/debug/slow" | "/debug/trace") => {
            method_not_allowed(stream, ctx, "GET");
            Served::Close
        }
        (_, "/edges" | "/rebuild") => {
            method_not_allowed(stream, ctx, "POST");
            Served::Close
        }
        _ => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                404,
                "application/json",
                &[],
                &http::json_error_body(
                    "unknown path (try /query, /healthz, /metrics, /version, /debug/slow, \
                     /debug/trace, /edges, /rebuild)",
                ),
            );
            Served::Close
        }
    }
}

fn kept(keep_alive: bool) -> Served {
    if keep_alive {
        Served::KeepAlive
    } else {
        Served::Close
    }
}

fn method_not_allowed(stream: &TcpStream, ctx: &WorkerContext, allow: &str) {
    Metrics::inc(&ctx.metrics.client_errors_total);
    respond(
        stream,
        405,
        "application/json",
        &[("Allow", allow)],
        &http::json_error_body(&format!("only {allow} is supported on this path")),
    );
}

#[allow(clippy::too_many_arguments)]
fn handle_query(
    stream: &TcpStream,
    request: &Request,
    ctx: &WorkerContext,
    deadline: Instant,
    accepted_at: Instant,
    started: Instant,
    lane: Lane,
    keep_alive: bool,
) -> Served {
    // Queue wait: admission to worker pickup.
    let queue_wait = started.saturating_duration_since(accepted_at);
    let trace = request.params.get("trace").map(String::as_str) == Some("1");
    // Adopt the caller's correlation id (the router mints one at ingress
    // and propagates it on every attempt) or mint one here — a
    // standalone daemon IS the ingress. Echoed on the response, stamped
    // into the slowlog, and — for traced requests — the trace ring and
    // the Chrome export, so one grep follows the request everywhere.
    let rid = request
        .request_id
        .as_deref()
        .and_then(RequestId::parse)
        .unwrap_or_else(RequestId::mint);
    let rid_hex = rid.to_hex();
    // One snapshot for the whole request: validation, cache key, solve,
    // and the version header all agree even across a concurrent swap.
    let snapshot = ctx.engine.current();
    let version_header = snapshot.version.to_string();
    let parsed = match parse_query_params(request, snapshot.bepi.node_count()) {
        Ok(p) => p,
        Err(msg) => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                400,
                "application/json",
                &[],
                &http::json_error_body(&msg),
            );
            return Served::Close;
        }
    };

    // Resolve the requested mode against the lane, the current pressure,
    // and whether this snapshot has an approximate engine at all. The
    // cache key always carries the *resolved* mode, so `auto` shares
    // entries with whichever explicit lane it lands on.
    let approx_engine = snapshot.approx.as_deref();
    let mode = match parsed.mode {
        RequestMode::Exact => {
            if lane == Lane::Degraded {
                // Exact work is exactly what the saturated main queue
                // could not absorb; the overflow lane must not do it.
                Metrics::inc(&ctx.metrics.rejected_total);
                respond(
                    stream,
                    503,
                    "application/json",
                    &[("Retry-After", "1")],
                    &http::json_error_body(
                        "overloaded: exact queries shed (retry, or use mode=auto)",
                    ),
                );
                return Served::Close;
            }
            ResponseMode::Exact
        }
        RequestMode::Approx => match approx_engine {
            Some(_) => ResponseMode::Approx {
                epoch: parsed.epoch,
            },
            None => {
                Metrics::inc(&ctx.metrics.client_errors_total);
                respond(
                    stream,
                    400,
                    "application/json",
                    &[],
                    &http::json_error_body(
                        "mode=approx unavailable: this index was started without an \
                         approximate engine (no graph embedded)",
                    ),
                );
                return Served::Close;
            }
        },
        RequestMode::Auto => {
            let pressured = lane == Lane::Degraded
                || ctx.metrics.queue_depth.load(Ordering::Relaxed) >= ctx.pressure_slots;
            match approx_engine {
                Some(_) if pressured => ResponseMode::Approx {
                    epoch: parsed.epoch,
                },
                None if lane == Lane::Degraded => {
                    // Nothing to degrade to: shed like a full queue would.
                    Metrics::inc(&ctx.metrics.rejected_total);
                    respond(
                        stream,
                        503,
                        "application/json",
                        &[("Retry-After", "1")],
                        &http::json_error_body("overloaded and no approximate engine available"),
                    );
                    return Served::Close;
                }
                _ => ResponseMode::Exact,
            }
        }
    };
    let key = QueryKey {
        seed: parsed.seed,
        top_k: parsed.top_k,
        version: snapshot.version,
        mode,
    };
    let approx = matches!(mode, ResponseMode::Approx { .. });
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(5);
    headers.push(("X-Graph-Version", &version_header));
    headers.push(("X-Request-Id", &rid_hex));
    headers.extend(ctx.shard_header());
    if approx {
        headers.push(("X-Approx", "1"));
    }

    // Cache hit: byte-identical rendered body, no solve. The key carries
    // the snapshot version and resolved mode, so a hit can only come from
    // this same epoch and lane.
    if let Some(body) = ctx.cache.get(&key) {
        Metrics::inc(&ctx.metrics.cache_hits_total);
        Metrics::inc(&ctx.metrics.queries_total);
        if approx {
            Metrics::inc(&ctx.metrics.approx_requests_total);
        }
        let total = accepted_at.elapsed();
        headers.push(("X-Cache", "hit"));
        if trace {
            let traced = with_trace(
                &body,
                &rid_hex,
                queue_wait,
                Duration::ZERO,
                Duration::ZERO,
                Duration::ZERO,
                total,
            );
            respond_conn(
                stream,
                200,
                "application/json",
                &headers,
                &traced,
                keep_alive,
            );
        } else {
            respond_conn(stream, 200, "application/json", &headers, &body, keep_alive);
        }
        ctx.metrics.query_latency.observe(started.elapsed());
        ctx.slow_log.record(&SlowQuery {
            seed: key.seed as u64,
            latency_us: total.as_micros() as u64,
            iterations: 0,
            residual: 0.0,
            cache_hit: true,
            version: key.version,
            top_k: key.top_k as u64,
            approx,
            request_id: rid,
            shard: ctx.shard_id,
        });
        if trace {
            record_traced(
                ctx,
                rid,
                &rid_hex,
                key,
                queue_wait,
                Duration::ZERO,
                Duration::ZERO,
                Duration::ZERO,
                total,
                true,
            );
        }
        return kept(keep_alive);
    }

    // The solve is not interruptible; shed the request if its budget is
    // already gone rather than burning a worker on a dead client.
    if remaining(deadline).is_none() {
        Metrics::inc(&ctx.metrics.timeouts_total);
        respond(
            stream,
            504,
            "application/json",
            &[],
            &http::json_error_body("deadline expired before solve"),
        );
        return Served::Close;
    }

    let solve_start = Instant::now();
    let solved = match key.mode {
        ResponseMode::Exact => snapshot.bepi.query(key.seed),
        // `approx_engine` is always Some here: every path that resolves
        // to Approx checked it above.
        ResponseMode::Approx { epoch } => approx_engine
            .expect("approx mode resolved without an engine")
            .query(key.seed, epoch),
    };
    let scores = match solved {
        Ok(s) => s,
        Err(e) => {
            Metrics::inc(&ctx.metrics.server_errors_total);
            respond(
                stream,
                500,
                "application/json",
                &[],
                &http::json_error_body(&format!("solver failed: {e}")),
            );
            return Served::Close;
        }
    };
    let solve_time = solve_start.elapsed();
    let (rendered, topk_time, serialize_time) = render_query_body_timed(key, &scores);
    let body: Arc<str> = Arc::from(rendered);
    ctx.cache.insert(key, Arc::clone(&body));
    Metrics::inc(&ctx.metrics.cache_misses_total);
    Metrics::inc(&ctx.metrics.queries_total);
    if approx {
        Metrics::inc(&ctx.metrics.approx_requests_total);
    }
    let total = accepted_at.elapsed();
    headers.push(("X-Cache", "miss"));
    if trace {
        // The cache stores the base body; the trace block is per-request
        // and spliced in only for the response that asked for it.
        let traced = with_trace(
            &body,
            &rid_hex,
            queue_wait,
            solve_time,
            topk_time,
            serialize_time,
            total,
        );
        respond_conn(
            stream,
            200,
            "application/json",
            &headers,
            &traced,
            keep_alive,
        );
    } else {
        respond_conn(stream, 200, "application/json", &headers, &body, keep_alive);
    }
    ctx.metrics.query_latency.observe(started.elapsed());
    ctx.slow_log.record(&SlowQuery {
        seed: key.seed as u64,
        latency_us: total.as_micros() as u64,
        iterations: scores.iterations as u64,
        residual: scores.residual,
        cache_hit: false,
        version: key.version,
        top_k: key.top_k as u64,
        approx,
        request_id: rid,
        shard: ctx.shard_id,
    });
    if trace {
        record_traced(
            ctx,
            rid,
            &rid_hex,
            key,
            queue_wait,
            solve_time,
            topk_time,
            serialize_time,
            total,
            false,
        );
    }
    kept(keep_alive)
}

/// Books a traced request into the trace ring, the structured log, and
/// (when `--trace-export` is active) the Chrome trace file. Off the
/// untraced hot path entirely.
#[allow(clippy::too_many_arguments)]
fn record_traced(
    ctx: &WorkerContext,
    rid: RequestId,
    rid_hex: &str,
    key: QueryKey,
    queue: Duration,
    solve: Duration,
    topk: Duration,
    serialize: Duration,
    total: Duration,
    cache_hit: bool,
) {
    ctx.trace_log.record(&TracedQuery {
        request_id: rid,
        seed: key.seed as u64,
        top_k: key.top_k as u64,
        queue_us: queue.as_micros() as u64,
        solve_us: solve.as_micros() as u64,
        topk_us: topk.as_micros() as u64,
        serialize_us: serialize.as_micros() as u64,
        total_us: total.as_micros() as u64,
        cache_hit,
        version: key.version,
        shard: ctx.shard_id,
    });
    bepi_obs::info!(
        "server",
        "traced query",
        request_id = rid_hex,
        seed = key.seed,
        cache_hit = cache_hit,
        total_us = total.as_micros()
    );
    let Some(exporter) = &ctx.exporter else {
        return;
    };
    // Trace lanes: pid = shard id (0 for a standalone daemon), tid = the
    // serving thread's ordinal — worker, degraded, or keep-alive thread.
    let pid = ctx.shard_id.unwrap_or(0);
    let tid = trace_tid();
    let total_us = total.as_micros() as u64;
    let end = bepi_obs::clock_us();
    let start = end.saturating_sub(total_us);
    let name = format!("query seed={}", key.seed);
    exporter.emit(&TraceEvent {
        name: &name,
        cat: "serve",
        ts_us: start,
        dur_us: total_us,
        pid,
        tid,
        args: &[
            ("request_id", rid_hex),
            ("cache", if cache_hit { "hit" } else { "miss" }),
        ],
    });
    let mut cursor = start;
    for (stage, d) in [
        ("queue", queue),
        ("solve", solve),
        ("topk", topk),
        ("serialize", serialize),
    ] {
        let us = d.as_micros() as u64;
        if us > 0 {
            exporter.emit(&TraceEvent {
                name: stage,
                cat: "serve",
                ts_us: cursor,
                dur_us: us,
                pid,
                tid,
                args: &[("request_id", rid_hex)],
            });
        }
        cursor += us;
    }
}

/// A small stable ordinal for the current serving thread, used as the
/// `tid` lane in exported traces (worker pool, degraded, and keep-alive
/// threads each get their own lane in order of first export).
fn trace_tid() -> u64 {
    use std::cell::Cell;
    static NEXT_TID: AtomicUsize = AtomicUsize::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed) as u64);
        }
        t.get()
    })
}

/// Splices the `?trace=1` stage-timing breakdown into a rendered `/query`
/// body (which always ends in `}`). Stages are reported in microseconds;
/// their sum is ≤ `total_us` — the remainder is parse and dispatch
/// overhead not attributed to a named stage. The request id makes the
/// body self-correlating: the same hex id is on the `X-Request-Id`
/// header, in `/debug/slow`, `/debug/trace`, and any trace export.
fn with_trace(
    body: &str,
    rid_hex: &str,
    queue: Duration,
    solve: Duration,
    topk: Duration,
    serialize: Duration,
    total: Duration,
) -> String {
    debug_assert!(body.ends_with('}'));
    format!(
        "{},\"trace\":{{\"request_id\":\"{}\",\"queue_us\":{},\"solve_us\":{},\
         \"topk_us\":{},\"serialize_us\":{},\"total_us\":{}}}}}",
        &body[..body.len() - 1],
        rid_hex,
        queue.as_micros(),
        solve.as_micros(),
        topk.as_micros(),
        serialize.as_micros(),
        total.as_micros()
    )
}

/// `GET /version`: the serving state in one JSON object.
fn handle_version(stream: &TcpStream, ctx: &WorkerContext, keep_alive: bool) -> Served {
    let info = ctx.engine.info();
    let last_error = match &info.last_error {
        Some(e) => http::json_string(e),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"version\":{},\"nodes\":{},\"pending\":{},\"rebuilds\":{},\"live\":{},\
         \"rebuild_kind\":\"{}\",\"rebuild_trigger\":\"{}\",\"last_error\":{}}}",
        info.version,
        info.nodes,
        info.pending,
        info.rebuilds,
        info.live,
        info.rebuild_kind,
        info.rebuild_trigger,
        last_error
    );
    let version_header = info.version.to_string();
    let mut headers: Vec<(&str, &str)> = vec![("X-Graph-Version", &version_header)];
    headers.extend(ctx.shard_header());
    respond_conn(stream, 200, "application/json", &headers, &body, keep_alive);
    kept(keep_alive)
}

/// `POST /edges`: a batch of JSON-lines edge updates, e.g.
///
/// ```text
/// {"op":"insert","u":0,"v":5}
/// {"op":"remove","u":3,"v":4}
/// ```
///
/// The whole batch is validated, WAL-logged, and buffered atomically;
/// queries keep seeing the current snapshot until a rebuild completes.
fn handle_edges(stream: &TcpStream, request: &Request, ctx: &WorkerContext) {
    let updates = match parse_edge_lines(&request.body) {
        Ok(u) => u,
        Err(msg) => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                400,
                "application/json",
                &[],
                &http::json_error_body(&msg),
            );
            return;
        }
    };
    match ctx.engine.submit(&updates) {
        Ok(out) => {
            let body = format!(
                "{{\"accepted\":{},\"pending\":{},\"version\":{},\"rebuild_triggered\":{}}}",
                out.accepted, out.pending, out.version, out.rebuild_triggered
            );
            respond(
                stream,
                200,
                "application/json",
                &[("X-Graph-Version", &out.version.to_string())],
                &body,
            );
        }
        Err(SparseError::IndexOutOfBounds { index, shape }) => {
            Metrics::inc(&ctx.metrics.client_errors_total);
            respond(
                stream,
                422,
                "application/json",
                &[],
                &http::json_error_body(&format!(
                    "edge ({}, {}) out of range (graph has {} nodes)",
                    index.0, index.1, shape.0
                )),
            );
        }
        Err(e) => {
            Metrics::inc(&ctx.metrics.server_errors_total);
            // Parity with every other shed path: a 503 always tells the
            // client when to come back.
            respond(
                stream,
                503,
                "application/json",
                &[("Retry-After", "1")],
                &http::json_error_body(&e.to_string()),
            );
        }
    }
}

/// `POST /rebuild`: force a flush of everything buffered and block until
/// the hot-swap completes. An admin operation — the query deadline does
/// not apply, so the socket budget is re-armed generously before the
/// (potentially long) preprocessing run.
fn handle_rebuild(stream: &TcpStream, ctx: &WorkerContext) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    match ctx.engine.rebuild_and_wait() {
        Ok(version) => {
            let body = format!(
                "{{\"version\":{},\"pending\":{}}}",
                version,
                ctx.engine.pending_len()
            );
            respond(
                stream,
                200,
                "application/json",
                &[("X-Graph-Version", &version.to_string())],
                &body,
            );
        }
        Err(e) => {
            Metrics::inc(&ctx.metrics.server_errors_total);
            respond(
                stream,
                503,
                "application/json",
                &[("Retry-After", "1")],
                &http::json_error_body(&e.to_string()),
            );
        }
    }
}

/// Parses a JSON-lines edge-update body. Each non-empty line is one flat
/// object with fields `op` (`"insert"` / `"remove"`), `u`, and `v`. The
/// parser is hand-rolled (std-only daemon) but tolerant of whitespace and
/// field order.
fn parse_edge_lines(body: &str) -> Result<Vec<EdgeUpdate>, String> {
    let mut updates = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        updates.push(parse_edge_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    if updates.is_empty() {
        return Err(
            "empty batch: expected JSON lines like {\"op\":\"insert\",\"u\":0,\"v\":5}".to_string(),
        );
    }
    Ok(updates)
}

fn parse_edge_line(line: &str) -> Result<EdgeUpdate, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("expected a JSON object, got {line:?}"))?;
    let (mut op, mut u, mut v) = (None, None, None);
    for field in inner.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("expected \"key\":value, got {field:?}"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "op" => {
                op = Some(
                    value
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| format!("op must be a string, got {value}"))?,
                );
            }
            "u" => u = Some(parse_node(value, "u")?),
            "v" => v = Some(parse_node(value, "v")?),
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    let op = op.ok_or("missing field: op")?;
    let u = u.ok_or("missing field: u")?;
    let v = v.ok_or("missing field: v")?;
    match op {
        "insert" => Ok(EdgeUpdate::Insert(u, v)),
        "remove" => Ok(EdgeUpdate::Remove(u, v)),
        other => Err(format!(
            "op must be \"insert\" or \"remove\", got {other:?}"
        )),
    }
}

fn parse_node(value: &str, name: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("{name} must be a non-negative integer, got {value}"))
}

/// The serving mode a `/query` request asked for (`?mode=`), before it is
/// resolved against pressure, lane, and engine availability into a
/// [`ResponseMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestMode {
    /// Always the exact BePI solve; sheds under overload.
    Exact,
    /// Always the approximate engine; 400 when the index has none.
    Approx,
    /// Exact normally, approximate under admission pressure — the
    /// graceful-degradation contract. The default: clients that never
    /// heard of `mode=` get degraded answers instead of 503s.
    Auto,
}

/// Validated `/query` parameters, pre-resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ParsedQuery {
    seed: usize,
    top_k: usize,
    mode: RequestMode,
    epoch: u64,
}

fn parse_query_params(request: &Request, node_count: usize) -> Result<ParsedQuery, String> {
    let seed_s = request
        .params
        .get("seed")
        .ok_or("missing required parameter: seed")?;
    let seed: usize = seed_s
        .parse()
        .map_err(|_| format!("bad seed: {seed_s:?}"))?;
    if seed >= node_count {
        return Err(format!(
            "seed {seed} out of range (index has {node_count} nodes)"
        ));
    }
    let top_k = match request.params.get("top") {
        None => DEFAULT_TOP_K,
        Some(t) => t.parse().map_err(|_| format!("bad top: {t:?}"))?,
    };
    let mode = match request.params.get("mode").map(String::as_str) {
        None | Some("auto") => RequestMode::Auto,
        Some("exact") => RequestMode::Exact,
        Some("approx") => RequestMode::Approx,
        Some(m) => return Err(format!("bad mode: {m:?} (expected exact, approx, or auto)")),
    };
    let epoch = match request.params.get("epoch") {
        None => 0,
        Some(e) => e.parse().map_err(|_| format!("bad epoch: {e:?}"))?,
    };
    Ok(ParsedQuery {
        seed,
        top_k: top_k.min(node_count),
        mode,
        epoch,
    })
}

/// Renders the `/query` response body. Scores use Rust's shortest
/// round-trip float formatting, so parsing them back yields bit-identical
/// `f64`s to what [`BePi::query`] produced.
pub fn render_query_body(key: QueryKey, scores: &bepi_core::RwrScores) -> String {
    render_query_body_timed(key, scores).0
}

/// [`render_query_body`] plus the two stage timings `?trace=1` reports:
/// top-k selection and serialization.
fn render_query_body_timed(
    key: QueryKey,
    scores: &bepi_core::RwrScores,
) -> (String, Duration, Duration) {
    let topk_start = Instant::now();
    let ranked = scores.top_k(key.top_k);
    let topk_time = topk_start.elapsed();
    let serialize_start = Instant::now();
    let mode_json = match key.mode {
        ResponseMode::Exact => "\"mode\":\"exact\"".to_string(),
        ResponseMode::Approx { epoch } => format!("\"mode\":\"approx\",\"epoch\":{epoch}"),
    };
    let mut body = format!(
        "{{\"seed\":{},\"top\":{},{},\"iterations\":{},\"residual\":{},\"results\":[",
        key.seed,
        key.top_k,
        mode_json,
        scores.iterations,
        fmt_f64(scores.residual)
    );
    for (i, &node) in ranked.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"node\":{},\"score\":{}}}",
            node,
            fmt_f64(scores.scores[node])
        ));
    }
    body.push_str("]}");
    (body, topk_time, serialize_start.elapsed())
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` is shortest round-trip and always includes a decimal
        // point or exponent, which keeps the token a JSON number.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Best-effort response write; a failed write means the client is gone,
/// which is not an error worth tracking separately.
fn respond(
    mut stream: &TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
) {
    let _ = http::write_response(&mut stream, status, content_type, extra, body);
    let _ = stream.flush();
}

/// [`respond`] with an explicit connection disposition: `keep_alive`
/// answers `Connection: keep-alive` so the caller can serve the next
/// request off the same stream.
fn respond_conn(
    mut stream: &TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) {
    let _ = http::write_response_conn(&mut stream, status, content_type, extra, body, keep_alive);
    let _ = stream.flush();
}

/// Sheds one connection with `503 Service Unavailable` + `Retry-After`.
/// Called by the *acceptor* when the admission queue is full, so the
/// worker pool never sees the connection. Reads (best-effort, bounded)
/// before writing so well-behaved clients get the response instead of a
/// reset.
pub fn shed_connection(stream: TcpStream, metrics: &Metrics) {
    Metrics::inc(&metrics.rejected_total);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 1024];
    let mut s = &stream;
    let _ = s.read(&mut sink);
    respond(
        &stream,
        503,
        "application/json",
        &[("Retry-After", "1")],
        &http::json_error_body("admission queue full, retry shortly"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_core::prelude::*;
    use bepi_graph::generators;

    #[test]
    fn query_body_rendering_is_valid_json_and_ranked() {
        let g = generators::erdos_renyi(50, 200, 11).unwrap();
        let bepi = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let scores = bepi.query(7).unwrap();
        let key = QueryKey {
            seed: 7,
            top_k: 5,
            version: 1,
            mode: ResponseMode::Exact,
        };
        let body = render_query_body(key, &scores);
        assert!(body.starts_with("{\"seed\":7,\"top\":5,\"mode\":\"exact\","));
        assert_eq!(body.matches("\"node\":").count(), 5);
        // The seed dominates its own ranking.
        assert!(body.contains(&format!(
            "\"node\":7,\"score\":{}",
            fmt_f64(scores.scores[7])
        )));
        // Scores round-trip bit-exactly through the rendered text.
        for &node in &scores.top_k(5) {
            let fragment = format!("\"node\":{node},\"score\":");
            let idx = body.find(&fragment).unwrap() + fragment.len();
            let rest = &body[idx..];
            let end = rest.find(['}', ',']).unwrap();
            let parsed: f64 = rest[..end].parse().unwrap();
            assert_eq!(parsed.to_bits(), scores.scores[node].to_bits());
        }
    }

    #[test]
    fn param_parsing_validates_seed_and_top() {
        let req = |q: &str| Request {
            method: "GET".into(),
            path: "/query".into(),
            params: q
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap();
                    (k.to_string(), v.to_string())
                })
                .collect(),
            body: String::new(),
            keep_alive: false,
            request_id: None,
        };
        assert_eq!(
            parse_query_params(&req("seed=3&top=4"), 10).unwrap(),
            ParsedQuery {
                seed: 3,
                top_k: 4,
                mode: RequestMode::Auto,
                epoch: 0
            }
        );
        // Defaults and clamping.
        assert_eq!(parse_query_params(&req("seed=3"), 10).unwrap().top_k, 10);
        assert_eq!(
            parse_query_params(&req("seed=3&top=99"), 10).unwrap().top_k,
            10
        );
        assert!(parse_query_params(&req(""), 10).is_err());
        assert!(parse_query_params(&req("seed=x"), 10).is_err());
        assert!(parse_query_params(&req("seed=10"), 10).is_err());
        assert!(parse_query_params(&req("seed=-1"), 10).is_err());
        assert!(parse_query_params(&req("seed=3&top=x"), 10).is_err());
    }

    #[test]
    fn param_parsing_validates_mode_and_epoch() {
        let req = |q: &str| Request {
            method: "GET".into(),
            path: "/query".into(),
            params: q
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap();
                    (k.to_string(), v.to_string())
                })
                .collect(),
            body: String::new(),
            keep_alive: false,
            request_id: None,
        };
        let mode = |q: &str| parse_query_params(&req(q), 10).unwrap().mode;
        assert_eq!(mode("seed=1"), RequestMode::Auto);
        assert_eq!(mode("seed=1&mode=auto"), RequestMode::Auto);
        assert_eq!(mode("seed=1&mode=exact"), RequestMode::Exact);
        assert_eq!(mode("seed=1&mode=approx"), RequestMode::Approx);
        assert!(parse_query_params(&req("seed=1&mode=fast"), 10).is_err());
        assert_eq!(
            parse_query_params(&req("seed=1&epoch=42"), 10)
                .unwrap()
                .epoch,
            42
        );
        assert!(parse_query_params(&req("seed=1&epoch=x"), 10).is_err());
        assert!(parse_query_params(&req("seed=1&epoch=-1"), 10).is_err());
    }

    #[test]
    fn approx_body_carries_mode_and_epoch() {
        let g = generators::erdos_renyi(20, 80, 5).unwrap();
        let bepi = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let scores = bepi.query(2).unwrap();
        let key = QueryKey {
            seed: 2,
            top_k: 3,
            version: 9,
            mode: ResponseMode::Approx { epoch: 7 },
        };
        let body = render_query_body(key, &scores);
        assert!(
            body.starts_with("{\"seed\":2,\"top\":3,\"mode\":\"approx\",\"epoch\":7,"),
            "{body}"
        );
    }

    #[test]
    fn edge_line_parsing() {
        assert_eq!(
            parse_edge_lines(
                "{\"op\":\"insert\",\"u\":0,\"v\":5}\n{\"op\":\"remove\",\"u\":3,\"v\":4}\n"
            )
            .unwrap(),
            vec![EdgeUpdate::Insert(0, 5), EdgeUpdate::Remove(3, 4)]
        );
        // Field order and whitespace are flexible; blank lines skipped.
        assert_eq!(
            parse_edge_lines("\n  { \"v\" : 2 , \"u\" : 1 , \"op\" : \"insert\" }  \n\n").unwrap(),
            vec![EdgeUpdate::Insert(1, 2)]
        );
        for bad in [
            "",
            "not json",
            "{\"op\":\"insert\",\"u\":0}",                 // missing v
            "{\"op\":\"upsert\",\"u\":0,\"v\":1}",         // unknown op
            "{\"op\":insert,\"u\":0,\"v\":1}",             // unquoted op
            "{\"op\":\"insert\",\"u\":-1,\"v\":1}",        // negative id
            "{\"op\":\"insert\",\"u\":0,\"v\":1,\"w\":2}", // unknown field
        ] {
            assert!(parse_edge_lines(bad).is_err(), "{bad:?}");
        }
        // Errors carry the 1-based line number.
        let err =
            parse_edge_lines("{\"op\":\"insert\",\"u\":0,\"v\":1}\n{\"op\":\"x\",\"u\":0,\"v\":1}")
                .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.05, 1e-9, 6.938893903907228e-18, 1.0, 0.0] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
