//! # bepi-solver
//!
//! The numerical solver substrate of the BePI reproduction (Jung et al.,
//! SIGMOD 2017). Everything here is implemented from scratch on top of
//! `bepi-sparse`:
//!
//! * [`dense_lu`] — dense LU with and without pivoting, triangular
//!   inversion, exact inverse (used by the Bear baseline's `S^{-1}` and
//!   the exact-solution reference of Appendix I).
//! * [`sparse_lu`] — no-pivot left-looking (Gilbert–Peierls) sparse LU and
//!   sparse triangular-factor inversion (the paper inverts `L1`, `U1`
//!   explicitly; safe without pivoting because `H` is strictly diagonally
//!   dominant for `0 < c < 1`).
//! * [`block_lu`] — per-block factorization/inversion of the block-diagonal
//!   `H11` produced by SlashBurn.
//! * [`ilu0`] — incomplete LU with zero fill, the preconditioner of
//!   Section 3.5.
//! * [`mod@gmres`] — restarted GMRES with modified Gram–Schmidt and Givens
//!   rotations, with optional left preconditioning (Appendix B).
//! * [`power`] — power iteration for RWR (Section 2.2).
//! * [`jacobi`] — Jacobi iteration (extra iterative baseline).
//! * [`arnoldi`] / [`eig`] — Arnoldi process and Hessenberg-QR eigensolver
//!   for the Ritz-value experiment of Figure 7.
//! * [`norm_est`] — power-method estimates of `‖A‖₂` and `σ_min`, plus a
//!   Hager 1-norm condition estimator (Theorem 4's accuracy bound).
//! * [`mod@bicgstab`] / [`precond`] — alternative Krylov solver and
//!   preconditioners for the ablation studies.
//!
//! ```
//! use bepi_solver::{gmres, GmresConfig, Ilu0, Preconditioner};
//! use bepi_sparse::Coo;
//!
//! // A small strictly diagonally dominant system.
//! let mut coo = Coo::new(3, 3)?;
//! for i in 0..3 {
//!     coo.push(i, i, 2.0)?;
//!     coo.push(i, (i + 1) % 3, -0.5)?;
//! }
//! let a = coo.to_csr();
//! let b = vec![1.0, 2.0, 3.0];
//! let ilu = Ilu0::factor(&a)?;
//! let sol = gmres(&a, &b, None, Some(&ilu as &dyn Preconditioner), &GmresConfig::default())?;
//! assert!(sol.converged);
//! let residual: f64 = a.mul_vec(&sol.x)?.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
//! assert!(residual < 1e-7);
//! # Ok::<(), bepi_sparse::SparseError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Index-based loops over multiple parallel arrays are the clearest (and
// often fastest) idiom in the numerical kernels here; the iterator
// rewrites clippy suggests obscure the subscript structure of the math.
#![allow(clippy::needless_range_loop)]

pub mod arnoldi;
pub mod bicgstab;
pub mod block_lu;
pub mod dense_lu;
pub mod eig;
pub mod gmres;
pub mod ilu0;
pub mod jacobi;
pub mod linop;
pub mod norm_est;
pub mod power;
pub mod precond;
pub mod sor;
pub mod sparse_lu;
pub mod triangular;

pub use bicgstab::{bicgstab, BiCgStabConfig, BiCgStabResult};
pub use block_lu::BlockLu;
pub use dense_lu::DenseLu;
pub use gmres::{gmres, GmresConfig, GmresResult};
pub use ilu0::Ilu0;
pub use linop::{IdentityPrecond, LinOp, Preconditioner};
pub use precond::{JacobiPrecond, NeumannPrecond};
pub use sparse_lu::SparseLu;
