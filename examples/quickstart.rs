//! Quickstart: the worked example of Figure 2 in the BePI paper.
//!
//! Builds the 8-node example graph, preprocesses it with full BePI, runs
//! one RWR query from node u1, and prints the personalized ranking table.
//!
//! Run with: `cargo run -p bepi-core --example quickstart`

use bepi_core::prelude::*;
use bepi_graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example graph of Figure 2 (u1 = node 0, …, u8 = node 7).
    let graph = generators::example_graph();
    println!(
        "graph: {} nodes, {} directed edges, {} deadends",
        graph.n(),
        graph.m(),
        graph.deadend_count()
    );

    // Preprocessing phase (Algorithm 3): reorder, block-eliminate,
    // sparsify the Schur complement, compute the ILU(0) preconditioner.
    let config = BePiConfig::default(); // c = 0.05, ε = 1e-9, full BePI
    let solver = BePi::preprocess(&graph, &config)?;
    let stats = solver.stats();
    println!(
        "preprocessed in {:?}: n1 = {} spokes, n2 = {} hubs, n3 = {} deadends, |S| = {}",
        stats.elapsed, stats.n1, stats.n2, stats.n3, stats.s_nnz
    );
    println!(
        "preprocessed data: {}",
        bepi_sparse::mem::format_bytes(solver.preprocessed_bytes())
    );

    // Query phase (Algorithm 4): RWR scores w.r.t. seed u1.
    let seed = 0;
    let result = solver.query(seed)?;
    println!(
        "\nRWR scores w.r.t. u1 (query took {} GMRES iterations):",
        result.iterations
    );
    println!("{:<6} {:>9} {:>6}", "node", "score", "rank");
    let ranking = result.top_k(graph.n());
    for (rank, &node) in ranking.iter().enumerate() {
        println!(
            "u{:<5} {:>9.4} {:>6}",
            node + 1,
            result.scores[node],
            rank + 1
        );
    }

    // The paper's observation: u8 outranks u6 because u8 connects to u1
    // through both u4 and u5.
    let u8_rank = ranking.iter().position(|&n| n == 7).unwrap();
    let u6_rank = ranking.iter().position(|&n| n == 5).unwrap();
    assert!(u8_rank < u6_rank, "u8 should be recommended over u6");
    println!(
        "\nu8 (rank {}) is recommended to u1 over u6 (rank {}).",
        u8_rank + 1,
        u6_rank + 1
    );
    Ok(())
}
