//! Spectral-norm and smallest-singular-value estimation.
//!
//! Theorem 4 bounds BePI's accuracy via `‖H12‖₂`, `‖H31‖₂`, `‖H32‖₂`,
//! `σ_min(H11)` and `σ_min(S)`. The 2-norm is `sqrt(λ_max(AᵀA))`,
//! estimated by the power method on the Gram operator; `σ_min` is
//! `1/sqrt(λ_max((AᵀA)^{-1}))`, estimated by inverse power iteration where
//! each step solves two systems with the caller-provided solver.

use crate::linop::{GramOp, LinOp};
use bepi_sparse::vecops::{norm2, normalize};
use bepi_sparse::Csr;

/// Result of a power-method estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormEstimate {
    /// The estimated value.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative change dropped below the tolerance.
    pub converged: bool,
}

/// Estimates `‖A‖₂` by the power method on `AᵀA`.
///
/// `tol` is the relative change tolerance between iterates (1e-6 is plenty
/// for the accuracy-bound use); returns 0 for an all-zero matrix.
pub fn norm2_est(a: &Csr, tol: f64, max_iters: usize) -> NormEstimate {
    let n = a.ncols();
    if n == 0 || a.nnz() == 0 {
        return NormEstimate {
            value: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let gram = GramOp::new(a);
    // Deterministic, dense starting vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + ((i % 7) as f64) * 0.1).collect();
    normalize(&mut v);
    let mut w = vec![0.0; n];
    let mut lambda = 0.0f64;
    for it in 1..=max_iters {
        gram.apply(&v, &mut w);
        let new_lambda = norm2(&w);
        if new_lambda == 0.0 {
            return NormEstimate {
                value: 0.0,
                iterations: it,
                converged: true,
            };
        }
        std::mem::swap(&mut v, &mut w);
        normalize(&mut v);
        let rel = (new_lambda - lambda).abs() / new_lambda;
        lambda = new_lambda;
        if rel <= tol {
            return NormEstimate {
                value: lambda.sqrt(),
                iterations: it,
                converged: true,
            };
        }
    }
    NormEstimate {
        value: lambda.sqrt(),
        iterations: max_iters,
        converged: false,
    }
}

/// Estimates `σ_min(A)` by inverse power iteration on `AᵀA`: each step
/// solves `Aᵀ A w = v` as `A z = v`-like pair via the provided solver for
/// `A x = b` and a second solve with `Aᵀ`. The caller supplies both solves
/// (BePI has LU factors or GMRES available for them).
///
/// `solve` must compute `A^{-1} b`; `solve_t` must compute `A^{-T} b`.
pub fn sigma_min_est<FS, FT>(
    n: usize,
    mut solve: FS,
    mut solve_t: FT,
    tol: f64,
    max_iters: usize,
) -> NormEstimate
where
    FS: FnMut(&[f64]) -> Vec<f64>,
    FT: FnMut(&[f64]) -> Vec<f64>,
{
    if n == 0 {
        return NormEstimate {
            value: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + ((i % 5) as f64) * 0.2).collect();
    normalize(&mut v);
    let mut mu = 0.0f64; // estimate of λ_max((AᵀA)^{-1}) = 1/σ_min²
    for it in 1..=max_iters {
        // w = (AᵀA)^{-1} v = A^{-1} (A^{-T} v)
        let z = solve_t(&v);
        let mut w = solve(&z);
        let new_mu = norm2(&w);
        if new_mu == 0.0 {
            return NormEstimate {
                value: f64::INFINITY,
                iterations: it,
                converged: true,
            };
        }
        normalize(&mut w);
        let rel = (new_mu - mu).abs() / new_mu;
        mu = new_mu;
        v = w;
        if rel <= tol {
            return NormEstimate {
                value: 1.0 / mu.sqrt(),
                iterations: it,
                converged: true,
            };
        }
    }
    NormEstimate {
        value: 1.0 / mu.sqrt(),
        iterations: max_iters,
        converged: false,
    }
}

/// Estimates `‖A^{-1}‖₁` by Hager's algorithm (the LAPACK `xLACON`
/// approach): a few solves with `A` and `A^T` against sign vectors.
///
/// Combined with the exact `‖A‖₁` this gives the 1-norm condition
/// estimate `κ₁(A) ≈ ‖A‖₁ ‖A^{-1}‖₁` — a cheap conditioning diagnostic
/// for the Schur complement.
pub fn inv_norm1_est<FS, FT>(n: usize, mut solve: FS, mut solve_t: FT, max_iters: usize) -> f64
where
    FS: FnMut(&[f64]) -> Vec<f64>,
    FT: FnMut(&[f64]) -> Vec<f64>,
{
    if n == 0 {
        return 0.0;
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut best = 0.0f64;
    for _ in 0..max_iters.max(1) {
        // y = A^{-1} x; estimate = ‖y‖₁.
        let y = solve(&x);
        let est: f64 = y.iter().map(|v| v.abs()).sum();
        best = best.max(est);
        // z = A^{-T} sign(y); next x = e_j with j = argmax |z_j|.
        let sign: Vec<f64> = y
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let z = solve_t(&sign);
        let (j, zmax) = z
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or((0, 0.0));
        // Convergence: the gradient bound says we're done when
        // ‖z‖∞ ≤ zᵀx (Hager's stopping rule, simplified).
        let zx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= zx.abs() {
            break;
        }
        x = vec![0.0; n];
        x[j] = 1.0;
    }
    best
}

/// 1-norm condition estimate `κ₁(A) ≈ ‖A‖₁ · est(‖A^{-1}‖₁)`.
pub fn condest_1<FS, FT>(a: &Csr, solve: FS, solve_t: FT) -> f64
where
    FS: FnMut(&[f64]) -> Vec<f64>,
    FT: FnMut(&[f64]) -> Vec<f64>,
{
    bepi_sparse::norms::norm1(a) * inv_norm1_est(a.nrows(), solve, solve_t, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_lu::DenseLu;
    use bepi_sparse::{Coo, Dense};

    #[test]
    fn condest_of_identity_is_one() {
        let a = bepi_sparse::Csr::identity(6);
        let est = condest_1(&a, |b| b.to_vec(), |b| b.to_vec());
        assert!((est - 1.0).abs() < 1e-12, "{est}");
    }

    #[test]
    fn condest_of_diagonal_matrix() {
        // diag(10, 1, 0.1): kappa_1 = 100.
        let mut coo = Coo::new(3, 3).unwrap();
        for (i, d) in [10.0, 1.0, 0.1f64].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let a = coo.to_csr();
        let solve = |b: &[f64]| vec![b[0] / 10.0, b[1], b[2] / 0.1];
        let est = condest_1(&a, solve, solve);
        assert!((est - 100.0).abs() < 1e-9, "{est}");
    }

    #[test]
    fn condest_lower_bounds_true_condition() {
        // Hager's estimate never exceeds the true kappa_1 and is usually
        // within a small factor; verify against a dense reference.
        let n = 12;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 2.0 + (i % 4) as f64).unwrap();
            coo.push(i, (i + 1) % n, -0.9).unwrap();
            coo.push(i, (i + 5) % n, 0.4).unwrap();
        }
        let a = coo.to_csr();
        let d = a.to_dense();
        let lu = DenseLu::factor(&d).unwrap();
        let dt = d.transpose();
        let lut = DenseLu::factor(&dt).unwrap();
        let est = condest_1(&a, |b| lu.solve(b).unwrap(), |b| lut.solve(b).unwrap());
        // True kappa_1 via the explicit inverse.
        let inv = lu.inverse().unwrap();
        let inv_norm1 = (0..n)
            .map(|j| (0..n).map(|i| inv[(i, j)].abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        let true_kappa = bepi_sparse::norms::norm1(&a) * inv_norm1;
        assert!(est <= true_kappa * (1.0 + 1e-9), "{est} > {true_kappa}");
        assert!(
            est >= true_kappa / 10.0,
            "estimate too loose: {est} vs {true_kappa}"
        );
    }

    #[test]
    fn norm2_of_diagonal_matrix() {
        let mut coo = Coo::new(3, 3).unwrap();
        for (i, d) in [2.0, -5.0, 1.0].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let est = norm2_est(&coo.to_csr(), 1e-10, 500);
        assert!(est.converged);
        assert!((est.value - 5.0).abs() < 1e-6, "{}", est.value);
    }

    #[test]
    fn norm2_of_known_2x2() {
        // [[3, 0], [4, 5]] → σ_max = sqrt(λ_max(AᵀA)); AᵀA = [[25,20],[20,25]]
        // λ_max = 45 → ‖A‖₂ = sqrt(45) ≈ 6.7082
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 3.0).unwrap();
        coo.push(1, 0, 4.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        let est = norm2_est(&coo.to_csr(), 1e-12, 1000);
        assert!((est.value - 45f64.sqrt()).abs() < 1e-6, "{}", est.value);
    }

    #[test]
    fn norm2_zero_matrix() {
        let est = norm2_est(&bepi_sparse::Csr::zeros(4, 4), 1e-8, 100);
        assert_eq!(est.value, 0.0);
        assert!(est.converged);
    }

    #[test]
    fn sigma_min_of_diagonal_matrix() {
        let a = Dense::from_rows(&[&[2.0, 0.0], &[0.0, 0.5]]).unwrap();
        let lu = DenseLu::factor(&a).unwrap();
        let at = a.transpose();
        let lut = DenseLu::factor(&at).unwrap();
        let est = sigma_min_est(
            2,
            |b| lu.solve(b).unwrap(),
            |b| lut.solve(b).unwrap(),
            1e-12,
            1000,
        );
        assert!((est.value - 0.5).abs() < 1e-6, "{}", est.value);
    }

    #[test]
    fn sigma_min_times_norm_bounds_condition() {
        // Random diagonally dominant matrix: verify σ_min ≤ ‖A‖₂.
        let n = 10;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 3.0 + (i % 3) as f64).unwrap();
            coo.push(i, (i + 1) % n, -0.5).unwrap();
        }
        let a = coo.to_csr();
        let d = a.to_dense();
        let lu = DenseLu::factor(&d).unwrap();
        let dt = d.transpose();
        let lut = DenseLu::factor(&dt).unwrap();
        let smin = sigma_min_est(
            n,
            |b| lu.solve(b).unwrap(),
            |b| lut.solve(b).unwrap(),
            1e-10,
            2000,
        );
        let smax = norm2_est(&a, 1e-10, 2000);
        assert!(smin.value <= smax.value + 1e-9);
        assert!(smin.value > 0.0);
    }
}
