//! Schur-complement construction and the sparsification diagnostics of
//! Section 3.4 / Figure 4.

use crate::hmatrix::HPartition;
use bepi_solver::BlockLu;
use bepi_sparse::{ops, spgemm, Csr, Result};

/// Computes the Schur complement
/// `S = H22 − H21 (U1^{-1} (L1^{-1} H12))` (Algorithm 1, line 6).
pub fn schur_complement(p: &HPartition, h11_lu: &BlockLu) -> Result<Csr> {
    let x = h11_lu.solve_matrix(&p.h12)?; // H11^{-1} H12
    let prod = spgemm(&p.h21, &x)?;
    ops::sub(&p.h22, &prod)
}

/// Non-zero accounting behind Figure 4's trade-off: for a given partition,
/// returns `(|S|, |H22|, |H21 H11^{-1} H12|)`.
pub fn schur_nnz_breakdown(p: &HPartition, h11_lu: &BlockLu) -> Result<(usize, usize, usize)> {
    let x = h11_lu.solve_matrix(&p.h12)?;
    let prod = spgemm(&p.h21, &x)?;
    let s = ops::sub(&p.h22, &prod)?;
    Ok((s.nnz(), p.h22.nnz(), prod.nnz()))
}

/// Selects the hub ratio `k` minimizing `|S|` over a grid — the BePI-S
/// selection rule of Section 3.4 ("select k which minimizes |S|",
/// Algorithm 1 line 2). Returns the winning `k` and the per-`k`
/// `(k, |S|)` curve (the data behind Figure 4).
///
/// This runs the full reorder + Schur pipeline once per grid point, so it
/// is a preprocessing-time (not query-time) facility.
pub fn select_hub_ratio(
    g: &bepi_graph::Graph,
    c: f64,
    grid: &[f64],
) -> Result<(f64, Vec<(f64, usize)>)> {
    if grid.is_empty() {
        return Err(bepi_sparse::SparseError::Numerical(
            "hub-ratio grid must be non-empty".into(),
        ));
    }
    let mut curve = Vec::with_capacity(grid.len());
    let mut best = (grid[0], usize::MAX);
    for &k in grid {
        let p = HPartition::build(g, c, k)?;
        let lu = BlockLu::factor(&p.h11, &p.block_sizes)?;
        let s = schur_complement(&p, &lu)?;
        curve.push((k, s.nnz()));
        if s.nnz() < best.1 {
            best = (k, s.nnz());
        }
    }
    Ok((best.0, curve))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;
    use bepi_solver::dense_lu::DenseLu;
    use bepi_sparse::Dense;

    fn dense_schur(p: &HPartition) -> Dense {
        // S = H22 − H21 H11^{-1} H12 via dense arithmetic.
        let h11 = p.h11.to_dense();
        let inv = DenseLu::factor(&h11).unwrap().inverse().unwrap();
        let x = inv.mul(&p.h12.to_dense()).unwrap();
        let prod = p.h21.to_dense().mul(&x).unwrap();
        let mut s = p.h22.to_dense();
        for i in 0..s.nrows() {
            for j in 0..s.ncols() {
                s[(i, j)] -= prod[(i, j)];
            }
        }
        s
    }

    #[test]
    fn matches_dense_reference() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 13).unwrap();
        let p = HPartition::build(&g, 0.05, 0.2).unwrap();
        assert!(p.n1 > 0 && p.n2 > 0, "need a nontrivial partition");
        let lu = BlockLu::factor(&p.h11, &p.block_sizes).unwrap();
        let s = schur_complement(&p, &lu).unwrap();
        let s_ref = dense_schur(&p);
        assert!(s.to_dense().max_abs_diff(&s_ref).unwrap() < 1e-10);
    }

    #[test]
    fn schur_is_invertible_diagonally_dominantish() {
        // S inherits invertibility from H (Lemma 1 / [50]); check the
        // dense determinant is comfortably non-zero.
        let g = generators::erdos_renyi(120, 600, 3).unwrap();
        let p = HPartition::build(&g, 0.05, 0.2).unwrap();
        let lu = BlockLu::factor(&p.h11, &p.block_sizes).unwrap();
        let s = schur_complement(&p, &lu).unwrap();
        let det = DenseLu::factor(&s.to_dense()).unwrap().determinant();
        assert!(det.abs() > 1e-12, "det(S) = {det}");
    }

    #[test]
    fn select_hub_ratio_returns_grid_minimum() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 41).unwrap();
        let grid = [0.05, 0.2, 0.4];
        let (best, curve) = select_hub_ratio(&g, 0.05, &grid).unwrap();
        assert_eq!(curve.len(), 3);
        let min = curve.iter().min_by_key(|(_, s)| *s).unwrap();
        assert_eq!(best, min.0);
        assert!(grid.contains(&best));
        assert!(select_hub_ratio(&g, 0.05, &[]).is_err());
    }

    #[test]
    fn nnz_breakdown_is_consistent() {
        let g = generators::rmat(8, 800, generators::RmatParams::default(), 23).unwrap();
        let p = HPartition::build(&g, 0.05, 0.25).unwrap();
        let lu = BlockLu::factor(&p.h11, &p.block_sizes).unwrap();
        let (s_nnz, h22_nnz, prod_nnz) = schur_nnz_breakdown(&p, &lu).unwrap();
        let s = schur_complement(&p, &lu).unwrap();
        assert_eq!(s_nnz, s.nnz());
        assert_eq!(h22_nnz, p.h22.nnz());
        // |S| ≤ |H22| + |H21 H11^{-1} H12| (Section 3.4).
        assert!(s_nnz <= h22_nnz + prod_nnz);
    }
}
