//! The exact dense reference `r* = c H^{-1} q` (Appendix I).
//!
//! Only viable for small graphs (the paper uses the 241-node Physicians
//! network); every other method is validated against this one in the
//! accuracy experiment of Figure 10 and in the integration tests.

use crate::rwr::{build_h, check_seed, RwrScores, RwrSolver};
use crate::DEFAULT_RESTART_PROB;
use bepi_graph::Graph;
use bepi_solver::DenseLu;
use bepi_sparse::{Dense, MemBytes, Result, SparseError};

/// Maximum node count for which the dense inverse is permitted.
const MAX_DENSE_NODES: usize = 5_000;

/// An exact RWR solver holding the explicit dense `H^{-1}`.
#[derive(Debug, Clone)]
pub struct DenseExact {
    h_inv: Dense,
    c: f64,
}

impl DenseExact {
    /// Inverts `H` densely. Rejects graphs above a small size cap.
    pub fn preprocess(g: &Graph, c: f64) -> Result<Self> {
        if g.n() > MAX_DENSE_NODES {
            return Err(SparseError::Numerical(format!(
                "DenseExact is for small graphs only ({} > {MAX_DENSE_NODES} nodes)",
                g.n()
            )));
        }
        let h = build_h(g, c)?;
        let h_inv = DenseLu::factor(&h.to_dense())?.inverse()?;
        Ok(Self { h_inv, c })
    }

    /// Exact solver with the paper's default `c = 0.05`.
    pub fn with_defaults(g: &Graph) -> Result<Self> {
        Self::preprocess(g, DEFAULT_RESTART_PROB)
    }
}

impl RwrSolver for DenseExact {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn node_count(&self) -> usize {
        self.h_inv.nrows()
    }

    fn query(&self, seed: usize) -> Result<RwrScores> {
        let n = self.node_count();
        check_seed(seed, n)?;
        // r = c H^{-1} e_s = c * column s of H^{-1}.
        let scores: Vec<f64> = (0..n).map(|i| self.c * self.h_inv[(i, seed)]).collect();
        Ok(RwrScores {
            scores,
            iterations: 0,
            residual: 0.0,
        })
    }

    fn preprocessed_bytes(&self) -> usize {
        self.h_inv.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn exact_satisfies_linear_system() {
        let g = generators::example_graph();
        let solver = DenseExact::with_defaults(&g).unwrap();
        let r = solver.query(0).unwrap();
        let h = crate::rwr::build_h(&g, 0.05).unwrap();
        let hr = h.mul_vec(&r.scores).unwrap();
        for (i, v) in hr.iter().enumerate() {
            let want = if i == 0 { 0.05 } else { 0.0 };
            assert!((v - want).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn matches_power_iteration_closely() {
        let g = bepi_graph::datasets::physicians_like();
        let exact = DenseExact::with_defaults(&g).unwrap();
        let power = crate::iterative::PowerSolver::with_defaults(&g).unwrap();
        let a = exact.query(10).unwrap();
        let b = power.query(10).unwrap();
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn rejects_large_graphs() {
        let g = generators::cycle(6_000);
        assert!(DenseExact::with_defaults(&g).is_err());
    }

    #[test]
    fn memory_is_n_squared() {
        let g = generators::cycle(10);
        let solver = DenseExact::with_defaults(&g).unwrap();
        assert_eq!(solver.preprocessed_bytes(), 100 * 8);
    }
}
