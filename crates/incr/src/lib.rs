//! # bepi-incr
//!
//! Symbolic/numeric split of BePI preprocessing, following the
//! analyze/factor/refactor pattern of KLU-style sparse direct solvers.
//!
//! BePI's preprocessing pipeline (deadend reordering, SlashBurn
//! hub-and-spoke reordering, per-block LU of `H11`, Schur complement,
//! ILU(0) preconditioning) mixes two very different kinds of work:
//!
//! * **Symbolic analysis** — choosing the node ordering and the block
//!   structure. This depends only on the *pattern* of the graph and is
//!   the expensive, hard-to-parallelize part (SlashBurn is iterative
//!   vertex removal).
//! * **Numeric factorization** — assembling `H`, inverting the diagonal
//!   blocks, forming `S = H22 − H21 H11^{-1} H12` and its ILU(0)
//!   factors. This is pure floating-point work against a fixed
//!   structure.
//!
//! This crate captures the symbolic phase in a reusable [`SymbolicPlan`]
//! ([`analyze`]), re-runs the numeric phase against a frozen plan
//! ([`assemble`]), classifies edge-update batches as numeric-only or
//! structural ([`classify`]), and recomputes only the `H11` blocks and
//! Schur rows whose inputs changed ([`refactor_schur`], together with
//! `BlockLu::refactor_blocks` in `bepi-solver`). A numeric-only refactor
//! is bit-identical to a full numeric factorization under the same plan:
//! every recomputed row runs the identical kernel on identical inputs,
//! and every untouched row is copied verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the clearest (and
// often fastest) idiom in the numerical kernels here; the iterator
// rewrites clippy suggests obscure the subscript structure of the math.
#![allow(clippy::needless_range_loop)]

use bepi_graph::Graph;
use bepi_reorder::{reorder_deadends, slashburn, SlashBurnConfig};
use bepi_solver::BlockLu;
use bepi_sparse::{ops, spgemm, Coo, Csr, Permutation, Result, SparseError};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The reusable output of the symbolic analysis phase: everything the
/// numeric phase needs that depends only on graph *structure*.
///
/// A plan is fully determined by fields that every persisted index format
/// already stores (`perm`, `n1`/`n2`/`n3`, `block_sizes`,
/// `slashburn_iterations`), so a plan round-trips through index files for
/// free — a restarted server can refactor against the checkpointed plan
/// without re-running SlashBurn.
#[derive(Debug, Clone)]
pub struct SymbolicPlan {
    /// Composite relabeling original → reordered (deadend ∘ SlashBurn).
    pub perm: Permutation,
    /// Number of spokes.
    pub n1: usize,
    /// Number of hubs.
    pub n2: usize,
    /// Number of deadends.
    pub n3: usize,
    /// Diagonal block sizes of `H11` (SlashBurn's spoke components).
    pub block_sizes: Vec<usize>,
    /// SlashBurn iterations performed (diagnostics only).
    pub slashburn_iterations: usize,
}

impl SymbolicPlan {
    /// Total node count the plan was built for.
    pub fn n(&self) -> usize {
        self.n1 + self.n2 + self.n3
    }

    /// Start offset of each `H11` diagonal block.
    pub fn block_starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.block_sizes.len());
        let mut acc = 0usize;
        for &s in &self.block_sizes {
            starts.push(acc);
            acc += s;
        }
        starts
    }

    /// Block id of every spoke slot (length `n1`).
    pub fn block_of_spoke(&self) -> Vec<u32> {
        let mut block_of = vec![0u32; self.n1];
        let mut start = 0usize;
        for (bi, &size) in self.block_sizes.iter().enumerate() {
            for slot in start..start + size {
                block_of[slot] = bi as u32;
            }
            start += size;
        }
        block_of
    }
}

/// Output of [`analyze`]: the plan plus the phase wall times the caller
/// folds into its preprocessing statistics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The symbolic plan.
    pub plan: SymbolicPlan,
    /// Wall time of the deadend reordering step.
    pub deadend_time: Duration,
    /// Wall time of the SlashBurn reordering step.
    pub slashburn_time: Duration,
}

/// Runs the symbolic analysis phase: deadend reordering, SlashBurn
/// hub-and-spoke reordering of the non-deadend block, and composition of
/// the two permutations. `k` is the SlashBurn hub selection ratio.
pub fn analyze(g: &Graph, k: f64) -> Result<Analysis> {
    let n = g.n();

    // 1. Deadend reordering (paper Figure 3(b)).
    let t0 = Instant::now();
    let dr = reorder_deadends(g);
    let l = dr.n_non_deadend;
    let n3 = dr.n_deadend;
    let a1 = dr.perm.permute_symmetric(g.adjacency())?;
    let deadend_time = t0.elapsed();
    bepi_obs::record_duration("preprocess.deadend", deadend_time);

    // 2. Hub-and-spoke reordering of Ann (Figure 3(c)); SlashBurn works
    //    on the symmetrized structure of the non-deadend block.
    let t1 = Instant::now();
    let ann = a1.slice_block(0..l, 0..l)?;
    let sym = symmetrize(&ann);
    let sb = slashburn(&sym, &SlashBurnConfig::with_ratio(k));
    let (n1, n2) = (sb.n_spokes, sb.n_hubs);
    let slashburn_time = t1.elapsed();
    bepi_obs::record_duration("preprocess.slashburn", slashburn_time);

    // Extend the SlashBurn permutation to all n nodes (deadends fixed).
    let mut ext = vec![0u32; n];
    for old in 0..l {
        ext[old] = sb.perm.apply(old) as u32;
    }
    for (old, e) in ext.iter_mut().enumerate().skip(l) {
        *e = old as u32;
    }
    let perm2 = Permutation::from_new_of_old(ext)?;
    let perm = dr.perm.then(&perm2)?;

    Ok(Analysis {
        plan: SymbolicPlan {
            perm,
            n1,
            n2,
            n3,
            block_sizes: sb.block_sizes,
            slashburn_iterations: sb.iterations,
        },
        deadend_time,
        slashburn_time,
    })
}

/// The six `H` blocks assembled under a frozen plan.
#[derive(Debug, Clone)]
pub struct HBlocks {
    /// `(n1 × n1)` block-diagonal spoke block.
    pub h11: Csr,
    /// `(n1 × n2)` spoke→hub coupling.
    pub h12: Csr,
    /// `(n2 × n1)` hub→spoke coupling.
    pub h21: Csr,
    /// `(n2 × n2)` hub block.
    pub h22: Csr,
    /// `(n3 × n1)` deadend rows against spokes.
    pub h31: Csr,
    /// `(n3 × n2)` deadend rows against hubs.
    pub h32: Csr,
    /// Wall time of the assembly.
    pub assemble_time: Duration,
}

/// A distinguishable "the frozen plan no longer fits this graph" error,
/// for callers that fall back to a full preprocess.
fn structural_error(reason: &str) -> SparseError {
    SparseError::Numerical(format!("symbolic plan violated: {reason}"))
}

/// Assembles and partitions `H = I − (1−c)Ã^T` under a frozen plan —
/// the numeric half of what `HPartition::build` does, against a
/// previously captured ordering.
///
/// The structural invariants the plan promises (zero upper-right block,
/// block-diagonal `H11`, identity deadend corner) are *validated at
/// runtime* here, not just debug-asserted: this is the safety backstop
/// behind the refactor fast path, so a misclassified batch surfaces as a
/// typed error instead of silently wrong factors.
pub fn assemble(g: &Graph, c: f64, plan: &SymbolicPlan) -> Result<HBlocks> {
    if !(c > 0.0 && c < 1.0) {
        return Err(SparseError::Numerical(format!(
            "restart probability must be in (0, 1), got {c}"
        )));
    }
    let n = g.n();
    if n != plan.n() {
        return Err(structural_error("node count changed"));
    }
    let (n1, n2) = (plan.n1, plan.n2);
    let l = n1 + n2;

    let t0 = Instant::now();
    let a = plan.perm.permute_symmetric(g.adjacency())?;
    let mut a_norm = a;
    a_norm.row_normalize();
    let at = a_norm.transpose();
    let h = ops::identity_minus_scaled(1.0 - c, &at)?;

    let h11 = h.slice_block(0..n1, 0..n1)?;
    let h12 = h.slice_block(0..n1, n1..l)?;
    let h21 = h.slice_block(n1..l, 0..n1)?;
    let h22 = h.slice_block(n1..l, n1..l)?;
    let h31 = h.slice_block(l..n, 0..n1)?;
    let h32 = h.slice_block(l..n, n1..l)?;

    if h.slice_block(0..l, l..n)?.nnz() != 0 {
        return Err(structural_error("deadend gained out-edges"));
    }
    if h.slice_block(l..n, l..n)? != Csr::identity(n - l) {
        return Err(structural_error("deadend corner is not the identity"));
    }
    if !bepi_reorder::blocks::is_block_diagonal(&h11, &plan.block_sizes) {
        return Err(structural_error("H11 is no longer block diagonal"));
    }

    let assemble_time = t0.elapsed();
    bepi_obs::record_duration("preprocess.assemble", assemble_time);

    Ok(HBlocks {
        h11,
        h12,
        h21,
        h22,
        h31,
        h32,
        assemble_time,
    })
}

/// What a numeric-only batch invalidates: which `H11` diagonal blocks
/// must be refactored, and whether any hub column of `H` changed (which
/// dirties whole Schur *columns*, forcing a full Schur recompute — the
/// block LU is still reused).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Sorted, deduplicated ids of `H11` diagonal blocks to refactor.
    pub blocks: Vec<usize>,
    /// True when a hub's out-edges changed: `H12`/`H22` columns moved, so
    /// every Schur row can be affected and `S` is recomputed in full.
    pub hub_columns: bool,
}

impl DirtySet {
    /// True when nothing numeric changed (the batch was a no-op).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && !self.hub_columns
    }
}

/// Verdict of [`classify`] for one update batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// Every change stays inside the frozen structure; refactor with the
    /// given dirty set.
    NumericOnly(DirtySet),
    /// The plan no longer fits (reason attached); fall back to a full
    /// preprocess.
    Structural(String),
}

/// Classifies an applied update batch against a frozen plan.
///
/// `sources` are the source nodes of every update in the batch (targets
/// need not be listed: an edge `u → v` only rewrites row `u` of the
/// adjacency matrix, i.e. column `p(u)` of `H`). The classifier compares
/// each candidate source's adjacency row in `g_old` vs `g_new` — columns
/// *and* values, so a remove+insert that resets an edge weight is
/// correctly seen as a change — and derives:
///
/// * **Structural** when the node count changed, a source flipped deadend
///   status (the deadend ordering would move), or a spoke source gained a
///   target in a *different* `H11` block (block-diagonality would break).
/// * **NumericOnly** otherwise, with the dirty block set (spoke sources)
///   and the hub-column flag (hub sources).
pub fn classify(
    plan: &SymbolicPlan,
    g_old: &Graph,
    g_new: &Graph,
    sources: &[usize],
) -> Classification {
    let n = plan.n();
    if g_old.n() != n || g_new.n() != n {
        return Classification::Structural(format!(
            "node count changed ({} -> {}, plan has {n})",
            g_old.n(),
            g_new.n()
        ));
    }
    let l = plan.n1 + plan.n2;
    let block_of = plan.block_of_spoke();
    let mut dirty_blocks: BTreeSet<usize> = BTreeSet::new();
    let mut hub_columns = false;
    let mut seen: BTreeSet<usize> = BTreeSet::new();

    for &u in sources {
        if u >= n {
            return Classification::Structural(format!("update source {u} out of range"));
        }
        if !seen.insert(u) {
            continue;
        }
        let (oc, ov) = g_old.adjacency().row(u);
        let (nc, nv) = g_new.adjacency().row(u);
        if oc == nc && ov == nv {
            continue; // the batch was a no-op for this source
        }
        if oc.is_empty() != nc.is_empty() {
            return Classification::Structural(format!("node {u} flipped deadend status"));
        }
        let pu = plan.perm.apply(u);
        if pu >= l {
            // A deadend whose row changed without flipping status cannot
            // happen (both rows would be empty); be defensive anyway.
            return Classification::Structural(format!("deadend node {u} changed out-edges"));
        }
        if pu < plan.n1 {
            let b = block_of[pu] as usize;
            for &v in nc {
                let pv = plan.perm.apply(v as usize);
                if pv < plan.n1 && block_of[pv] as usize != b {
                    return Classification::Structural(format!(
                        "edge {u} -> {v} crosses H11 blocks"
                    ));
                }
            }
            dirty_blocks.insert(b);
        } else {
            hub_columns = true;
        }
    }
    Classification::NumericOnly(DirtySet {
        blocks: dirty_blocks.into_iter().collect(),
        hub_columns,
    })
}

/// Recomputes only the Schur rows whose inputs changed and splices them
/// into the previous Schur complement.
///
/// `old_s` and `h21_old` come from the pre-update index; `blocks` and
/// `lu_new` are the freshly assembled `H` blocks and (partially)
/// refactored `H11` factors. Dirty rows are the hub rows whose `H21`
/// entries (old or new) touch a dirty `H11` block; every other row of
/// `S = H22 − H21 (U1^{-1}(L1^{-1} H12))` is unchanged term-for-term and
/// is copied verbatim, so the result is bit-identical to a full Schur
/// recompute under the same plan.
pub fn refactor_schur(
    old_s: &Csr,
    blocks: &HBlocks,
    h21_old: &Csr,
    lu_new: &BlockLu,
    plan: &SymbolicPlan,
    dirty: &DirtySet,
) -> Result<Csr> {
    let n2 = plan.n2;
    if dirty.hub_columns {
        // Hub columns moved: whole Schur columns are dirty, so recompute
        // S in full (the block LU above is still reused — that and the
        // reordering are the dominant preprocessing costs).
        let x = lu_new.solve_matrix(&blocks.h12)?;
        let prod = spgemm(&blocks.h21, &x)?;
        return ops::sub(&blocks.h22, &prod);
    }
    if dirty.blocks.is_empty() {
        return Ok(old_s.clone());
    }

    // Spoke slots covered by dirty blocks.
    let starts = plan.block_starts();
    let mut spoke_dirty = vec![false; plan.n1];
    for &b in &dirty.blocks {
        if b >= plan.block_sizes.len() {
            return Err(SparseError::IndexOutOfBounds {
                index: (b, b),
                shape: (plan.block_sizes.len(), plan.block_sizes.len()),
            });
        }
        for slot in starts[b]..starts[b] + plan.block_sizes[b] {
            spoke_dirty[slot] = true;
        }
    }

    // Dirty Schur rows: any H21 row (old or new) with a non-zero in a
    // dirty block's columns. Removed entries dirty a row too, hence the
    // scan over both generations.
    let row_touches_dirty = |m: &Csr, i: usize| -> bool {
        let (cols, _) = m.row(i);
        cols.iter().any(|&c| spoke_dirty[c as usize])
    };
    let dirty_rows: Vec<usize> = (0..n2)
        .filter(|&i| row_touches_dirty(h21_old, i) || row_touches_dirty(&blocks.h21, i))
        .collect();
    if dirty_rows.is_empty() {
        return Ok(old_s.clone());
    }

    // Blocks whose X rows the dirty H21 rows reference (a superset of the
    // dirty blocks: a dirty row may also multiply clean-block columns).
    let block_of = plan.block_of_spoke();
    let mut needed: BTreeSet<usize> = BTreeSet::new();
    for &i in &dirty_rows {
        let (cols, _) = blocks.h21.row(i);
        for &c in cols {
            needed.insert(block_of[c as usize] as usize);
        }
    }

    // X = U1^{-1}(L1^{-1} H12), computed per needed block. The factors
    // are block diagonal, so each block's rows of X depend only on that
    // block's factor rows and H12 rows — the per-row kernel is identical
    // to the full product, making the rows bit-identical.
    let mut x_coo = Coo::new(plan.n1, n2)?;
    for &b in &needed {
        let range = starts[b]..starts[b] + plan.block_sizes[b];
        let lb = lu_new.l_inv.slice_block(range.clone(), range.clone())?;
        let ub = lu_new.u_inv.slice_block(range.clone(), range.clone())?;
        let h12b = blocks.h12.slice_block(range.clone(), 0..n2)?;
        let t = spgemm(&lb, &h12b)?;
        let xb = spgemm(&ub, &t)?;
        for (r, c, v) in xb.iter() {
            x_coo.push(starts[b] + r, c, v)?;
        }
    }
    let x = x_coo.to_csr();

    // Compact the dirty rows of H21 and H22, run the identical
    // product/subtract kernels on them, then splice the recomputed rows
    // back over the old S.
    let mut h21_d = Coo::new(dirty_rows.len(), plan.n1)?;
    let mut h22_d = Coo::new(dirty_rows.len(), n2)?;
    for (di, &i) in dirty_rows.iter().enumerate() {
        for (c, v) in blocks.h21.row_iter(i) {
            h21_d.push(di, c, v)?;
        }
        for (c, v) in blocks.h22.row_iter(i) {
            h22_d.push(di, c, v)?;
        }
    }
    let prod_d = spgemm(&h21_d.to_csr(), &x)?;
    let s_d = ops::sub(&h22_d.to_csr(), &prod_d)?;

    let mut out = Coo::with_capacity(n2, n2, old_s.nnz() + s_d.nnz())?;
    let mut next_dirty = 0usize;
    for i in 0..n2 {
        if next_dirty < dirty_rows.len() && dirty_rows[next_dirty] == i {
            for (c, v) in s_d.row_iter(next_dirty) {
                out.push(i, c, v)?;
            }
            next_dirty += 1;
        } else {
            for (c, v) in old_s.row_iter(i) {
                out.push(i, c, v)?;
            }
        }
    }
    Ok(out.to_csr())
}

/// Symmetrized 0/1 structure of a square sparse matrix (SlashBurn input).
fn symmetrize(a: &Csr) -> Csr {
    let mut b = a.clone();
    for v in b.values_mut() {
        *v = 1.0;
    }
    let mut t = a.transpose();
    for v in t.values_mut() {
        *v = 1.0;
    }
    let mut s = ops::add(&b, &t).expect("same shape");
    for v in s.values_mut() {
        *v = 1.0;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    const C: f64 = 0.05;
    const K: f64 = 0.2;

    fn plan_and_blocks(g: &Graph) -> (SymbolicPlan, HBlocks) {
        let analysis = analyze(g, K).unwrap();
        let blocks = assemble(g, C, &analysis.plan).unwrap();
        (analysis.plan, blocks)
    }

    fn full_schur(blocks: &HBlocks, lu: &BlockLu) -> Csr {
        let x = lu.solve_matrix(&blocks.h12).unwrap();
        let prod = spgemm(&blocks.h21, &x).unwrap();
        ops::sub(&blocks.h22, &prod).unwrap()
    }

    /// A numeric-safe update: remove an existing edge whose source keeps
    /// other out-edges (removals never cross blocks or flip deadends).
    fn removable_edge(g: &Graph) -> (usize, usize) {
        for u in 0..g.n() {
            if g.out_degree(u) >= 2 {
                let (cols, _) = g.adjacency().row(u);
                return (u, cols[0] as usize);
            }
        }
        panic!("no removable edge in test graph");
    }

    fn without_edge(g: &Graph, u: usize, v: usize) -> Graph {
        let mut coo = Coo::new(g.n(), g.n()).unwrap();
        for (r, c, w) in g.adjacency().iter() {
            if !(r == u && c == v) {
                coo.push(r, c, w).unwrap();
            }
        }
        Graph::from_adjacency(coo.to_csr()).unwrap()
    }

    #[test]
    fn analyze_partitions_every_node() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
        let g = generators::inject_deadends(&g, 0.2, 1).unwrap();
        let analysis = analyze(&g, K).unwrap();
        let plan = &analysis.plan;
        assert_eq!(plan.n(), g.n());
        assert_eq!(plan.n3, g.deadend_count());
        assert_eq!(plan.block_sizes.iter().sum::<usize>(), plan.n1);
        assert_eq!(plan.block_of_spoke().len(), plan.n1);
        assert_eq!(plan.block_starts().len(), plan.block_sizes.len());
    }

    #[test]
    fn assemble_validates_structure() {
        let g = generators::rmat(8, 700, generators::RmatParams::default(), 5).unwrap();
        let (plan, blocks) = plan_and_blocks(&g);
        assert!(bepi_reorder::blocks::is_block_diagonal(
            &blocks.h11,
            &plan.block_sizes
        ));
        // A different-sized graph is rejected as structural.
        let bigger = generators::cycle(g.n() + 1);
        assert!(assemble(&bigger, C, &plan).is_err());
        assert!(assemble(&g, 1.5, &plan).is_err());
    }

    #[test]
    fn classify_noop_batch_is_numeric_and_empty() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 13).unwrap();
        let (plan, _) = plan_and_blocks(&g);
        match classify(&plan, &g, &g, &[0, 1, 2]) {
            Classification::NumericOnly(d) => assert!(d.is_empty()),
            c => panic!("expected numeric, got {c:?}"),
        }
    }

    #[test]
    fn classify_detects_node_count_change() {
        let g = generators::cycle(10);
        let (plan, _) = plan_and_blocks(&g);
        let bigger = generators::cycle(11);
        assert!(matches!(
            classify(&plan, &g, &bigger, &[0]),
            Classification::Structural(_)
        ));
    }

    #[test]
    fn classify_detects_deadend_flip() {
        // Removing node u's only out-edge makes it a deadend.
        let g = generators::cycle(12);
        let (plan, _) = plan_and_blocks(&g);
        let g_new = without_edge(&g, 3, 4);
        assert!(matches!(
            classify(&plan, &g, &g_new, &[3]),
            Classification::Structural(_)
        ));
    }

    #[test]
    fn classify_removal_of_redundant_edge_is_numeric() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 7).unwrap();
        let (plan, _) = plan_and_blocks(&g);
        let (u, v) = removable_edge(&g);
        let g_new = without_edge(&g, u, v);
        match classify(&plan, &g, &g_new, &[u]) {
            Classification::NumericOnly(d) => {
                let pu = plan.perm.apply(u);
                if pu < plan.n1 {
                    assert_eq!(d.blocks.len(), 1);
                    assert!(!d.hub_columns);
                } else {
                    assert!(d.hub_columns);
                }
            }
            c => panic!("expected numeric, got {c:?}"),
        }
    }

    #[test]
    fn refactor_schur_is_bit_identical_to_full_recompute() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 17).unwrap();
        let (plan, blocks) = plan_and_blocks(&g);
        let lu = BlockLu::factor(&blocks.h11, &plan.block_sizes).unwrap();
        let old_s = full_schur(&blocks, &lu);

        let (u, v) = removable_edge(&g);
        let g_new = without_edge(&g, u, v);
        let dirty = match classify(&plan, &g, &g_new, &[u]) {
            Classification::NumericOnly(d) => d,
            c => panic!("expected numeric, got {c:?}"),
        };
        let new_blocks = assemble(&g_new, C, &plan).unwrap();
        let lu_new = lu.refactor_blocks(&new_blocks.h11, &dirty.blocks).unwrap();
        // Reference: full factor + full Schur on the updated graph.
        let lu_ref = BlockLu::factor(&new_blocks.h11, &plan.block_sizes).unwrap();
        assert_eq!(lu_new.l_inv, lu_ref.l_inv);
        assert_eq!(lu_new.u_inv, lu_ref.u_inv);
        let s_ref = full_schur(&new_blocks, &lu_ref);
        let s_got =
            refactor_schur(&old_s, &new_blocks, &blocks.h21, &lu_new, &plan, &dirty).unwrap();
        assert_eq!(s_got, s_ref);
    }

    #[test]
    fn refactor_schur_empty_dirty_set_copies_s() {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 23).unwrap();
        let (plan, blocks) = plan_and_blocks(&g);
        let lu = BlockLu::factor(&blocks.h11, &plan.block_sizes).unwrap();
        let s = full_schur(&blocks, &lu);
        let got =
            refactor_schur(&s, &blocks, &blocks.h21, &lu, &plan, &DirtySet::default()).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn refactor_schur_hub_columns_recomputes_in_full() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 29).unwrap();
        let (plan, blocks) = plan_and_blocks(&g);
        let lu = BlockLu::factor(&blocks.h11, &plan.block_sizes).unwrap();
        let s = full_schur(&blocks, &lu);
        let dirty = DirtySet {
            blocks: Vec::new(),
            hub_columns: true,
        };
        let got = refactor_schur(&s, &blocks, &blocks.h21, &lu, &plan, &dirty).unwrap();
        assert_eq!(got, s);
    }
}
