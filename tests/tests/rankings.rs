//! Ranking-level agreement across exact and approximate methods, plus
//! reverse queries via the transpose graph.

use bepi_core::approx::{forward_push, monte_carlo};
use bepi_core::metrics::{kendall_tau_top_k, precision_at_k, top_k_mae};
use bepi_core::prelude::*;
use bepi_graph::{generators, Graph};

#[test]
fn forward_push_preserves_top_10_ranking() {
    let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
    let exact = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    for seed in [0usize, 17, 100] {
        if g.out_degree(seed) == 0 {
            continue;
        }
        let truth = exact.query(seed).unwrap().scores;
        let push = forward_push(&g, 0.05, seed, 1e-9).unwrap().scores.scores;
        assert!(
            precision_at_k(&truth, &push, 10) >= 0.9,
            "seed {seed}: push top-10 diverged"
        );
        assert!(kendall_tau_top_k(&truth, &push, 10) > 0.8);
        assert!(top_k_mae(&truth, &push, 10) < 1e-6);
    }
}

#[test]
fn monte_carlo_preserves_top_5_ranking() {
    let g = generators::erdos_renyi(80, 450, 9).unwrap();
    let exact = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let seed = 11;
    let truth = exact.query(seed).unwrap().scores;
    let mc = monte_carlo(&g, 0.05, seed, 100_000, 7).unwrap().scores;
    // MC noise can swap near-tied ranks; demand clear majority agreement
    // plus agreement on the top node (the seed).
    assert!(
        precision_at_k(&truth, &mc, 5) >= 0.6,
        "MC top-5 precision too low"
    );
    assert_eq!(
        bepi_sparse::vecops::top_k_indices(&mc, 1),
        bepi_sparse::vecops::top_k_indices(&truth, 1)
    );
}

#[test]
fn reverse_queries_via_transpose() {
    // Directed chain 0 → 1 → 2: forward RWR from 0 reaches 2; the reverse
    // question "who reaches 2?" is a forward query from 2 on Gᵀ.
    let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let forward = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let f = forward.query(0).unwrap().scores;
    assert!(f[2] > 0.0, "forward walk reaches the chain end");

    let reverse = BePi::preprocess(&g.transpose(), &BePiConfig::default()).unwrap();
    let r = reverse.query(2).unwrap().scores;
    assert!(
        r[0] > 0.0 && r[1] > 0.0,
        "reverse walk finds ancestors: {r:?}"
    );
    assert!(r[1] > r[0], "closer ancestor scores higher");

    // Forward from 2 (a deadend) scores nothing but itself.
    let f2 = forward.query(2).unwrap().scores;
    assert!(f2[0] == 0.0 && f2[1] == 0.0);
}

#[test]
fn reverse_ranking_on_citation_like_graph() {
    // Preferential attachment points to "older" nodes; the reverse query
    // from an old hub surfaces its followers.
    let g = generators::preferential_attachment(200, 2, 5).unwrap();
    let hub = (0..g.n()).max_by_key(|&u| g.in_degrees()[u]).unwrap();
    let reverse = BePi::preprocess(&g.transpose(), &BePiConfig::default()).unwrap();
    let r = reverse.query(hub).unwrap();
    // Every in-neighbor of the hub gets positive reverse score.
    let followers: Vec<usize> = (0..g.n())
        .filter(|&u| g.adjacency().get(u, hub) > 0.0)
        .collect();
    assert!(!followers.is_empty());
    for u in followers {
        assert!(r.scores[u] > 0.0, "follower {u} unscored");
    }
}
