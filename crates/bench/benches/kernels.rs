//! Criterion microbenchmarks for the sparse kernels underlying every
//! phase: SpMV (query inner loop), SpGEMM (Schur construction), ILU(0)
//! factorization, and block-LU factorization.

use bepi_core::hmatrix::HPartition;
use bepi_graph::Dataset;
use bepi_solver::{BlockLu, Ilu0};
use bepi_sparse::spgemm;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let ds = Dataset::Wikipedia;
    let g = ds.generate();
    let p = HPartition::build(&g, 0.05, ds.spec().hub_ratio).unwrap();
    let blu = BlockLu::factor(&p.h11, &p.block_sizes).unwrap();
    let s = bepi_core::schur::schur_complement(&p, &blu).unwrap();
    let a = g.row_normalized();
    let x: Vec<f64> = (0..g.n()).map(|i| (i as f64 * 0.1).sin()).collect();

    let mut group = c.benchmark_group("kernels/wikipedia-like");
    group.bench_function("spmv", |b| {
        let mut y = vec![0.0; g.n()];
        b.iter(|| a.mul_vec_into(black_box(&x), &mut y).unwrap())
    });
    group.bench_function("spmv_transposed", |b| {
        let mut y = vec![0.0; g.n()];
        b.iter(|| a.mul_vec_transposed_into(black_box(&x), &mut y).unwrap())
    });
    group.bench_function("spgemm_h21_h12", |b| {
        b.iter(|| black_box(spgemm(black_box(&p.h21), black_box(&p.h12)).unwrap()))
    });
    group.bench_function("block_lu_factor", |b| {
        b.iter(|| black_box(BlockLu::factor(&p.h11, &p.block_sizes).unwrap()))
    });
    group.bench_function("ilu0_factor", |b| {
        b.iter(|| black_box(Ilu0::factor(&s).unwrap()))
    });
    group.bench_function("schur_complement", |b| {
        b.iter(|| black_box(bepi_core::schur::schur_complement(&p, &blu).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
