//! Lock-free telemetry instruments: fixed-bucket histograms, float gauges,
//! and the process-global solver/WAL instruments shared across the stack.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum number of finite bucket bounds a [`Histogram`] supports.
pub const MAX_BUCKETS: usize = 16;

/// A fixed-bound histogram with atomic per-bucket counters.
///
/// Buckets store *non-cumulative* counts internally; rendering for the
/// Prometheus exposition format accumulates them so `le` series are
/// monotone cumulative. The sum is accumulated in micro-units (value × 1e6,
/// rounded) so it needs no floating-point CAS loop.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: [AtomicU64; MAX_BUCKETS],
    /// Overflow bucket (`+Inf`): observations above the last finite bound.
    overflow: AtomicU64,
    sum_micro: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over ascending finite bucket bounds.
    ///
    /// # Panics
    /// Panics when more than [`MAX_BUCKETS`] bounds are given or when the
    /// bounds are not strictly ascending.
    pub fn new(bounds: &'static [f64]) -> Histogram {
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b);
        match idx {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        let micro = if value.is_finite() && value > 0.0 {
            (value * 1e6).round() as u64
        } else {
            0
        };
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Bucket bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Cumulative bucket counts, one per finite bound plus the `+Inf` bucket
    /// at the end.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        let mut acc = 0u64;
        for b in &self.buckets[..self.bounds.len()] {
            acc += b.load(Ordering::Relaxed);
            out.push(acc);
        }
        acc += self.overflow.load(Ordering::Relaxed);
        out.push(acc);
        out
    }

    /// Renders the histogram in Prometheus exposition format 0.0.4, with
    /// `# HELP`/`# TYPE` headers, decimal-formatted `le` labels, `_sum`, and
    /// `_count`.
    pub fn render_into(&self, out: &mut String, name: &str, help: &str) {
        use std::fmt::Write;
        let _ = writeln!(out, "# HELP {} {}", name, help);
        let _ = writeln!(out, "# TYPE {} histogram", name);
        let cumulative = self.cumulative();
        for (i, &bound) in self.bounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}_bucket{{le=\"{}\"}} {}",
                name,
                format_le(bound),
                cumulative[i]
            );
        }
        let total = *cumulative.last().unwrap_or(&0);
        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", name, total);
        let _ = writeln!(out, "{}_sum {}", name, render_f64(self.sum()));
        let _ = writeln!(out, "{}_count {}", name, total);
    }
}

/// Formats a histogram bucket bound as a plain decimal float — never
/// scientific notation, which Prometheus scrapers reject in `le` labels.
///
/// Rust's `Display` for `f64` switches to exponent form for small magnitudes
/// (`5e-5`); this expands to the shortest fixed-precision decimal that
/// round-trips back to the same bits.
pub fn format_le(bound: f64) -> String {
    if bound.is_infinite() {
        return if bound > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    let plain = format!("{}", bound);
    if !plain.contains(['e', 'E']) {
        return plain;
    }
    for precision in 0..=17 {
        let fixed = format!("{:.*}", precision, bound);
        if fixed.parse::<f64>() == Ok(bound) {
            return fixed;
        }
    }
    format!("{:.17}", bound)
}

/// Formats a sample value for exposition output without exponent notation.
pub fn render_f64(v: f64) -> String {
    if v.is_nan() {
        return "NaN".into();
    }
    format_le(v)
}

/// A float gauge stored as `f64` bits in an atomic.
#[derive(Debug, Default)]
pub struct F64Gauge {
    bits: AtomicU64,
}

impl F64Gauge {
    /// Creates a gauge initialised to `0.0`.
    pub const fn new() -> F64Gauge {
        F64Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Loads the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket bounds for GMRES iteration counts (powers of two; the paper's
/// Schur-complement solves typically converge within a few dozen).
pub const GMRES_ITERATION_BOUNDS: [f64; 12] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
];

/// Bucket bounds (seconds) for WAL fsync latency.
pub const WAL_FSYNC_BOUNDS: [f64; 12] = [
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
];

/// Process-global histogram of inner-solver iteration counts per query.
pub fn gmres_iterations() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| Histogram::new(&GMRES_ITERATION_BOUNDS))
}

/// Process-global gauge holding the most recent query's final residual.
pub fn gmres_residual() -> &'static F64Gauge {
    static G: F64Gauge = F64Gauge::new();
    &G
}

/// Process-global histogram of WAL append fsync latency in seconds.
pub fn wal_fsync_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| Histogram::new(&WAL_FSYNC_BOUNDS))
}

/// Records one solve's telemetry (iterations histogram + residual gauge).
/// Called by the core query path on every cache-missing solve, including
/// batch queries.
pub fn record_solve(iterations: usize, residual: f64) {
    gmres_iterations().observe(iterations as f64);
    gmres_residual().set(residual);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_le_never_uses_exponent() {
        for b in GMRES_ITERATION_BOUNDS.iter().chain(WAL_FSYNC_BOUNDS.iter()) {
            let s = format_le(*b);
            assert!(!s.contains(['e', 'E']), "{} rendered as {}", b, s);
            assert_eq!(s.parse::<f64>().unwrap(), *b, "round trip of {}", s);
        }
        assert_eq!(format_le(0.00005), "0.00005");
        assert_eq!(format_le(0.00025), "0.00025");
        assert_eq!(format_le(1.0), "1");
        assert_eq!(format_le(f64::INFINITY), "+Inf");
    }

    #[test]
    fn histogram_cumulative_counts_are_monotone() {
        static BOUNDS: [f64; 3] = [1.0, 10.0, 100.0];
        let h = Histogram::new(&BOUNDS);
        for v in [0.5, 5.0, 50.0, 500.0, 50.0, 0.1] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum, vec![2, 3, 5, 6]);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 605.6).abs() < 1e-6, "sum={}", h.sum());
    }

    #[test]
    fn histogram_render_parses_cleanly() {
        static BOUNDS: [f64; 2] = [0.00005, 2.0];
        let h = Histogram::new(&BOUNDS);
        h.observe(0.00001);
        h.observe(1.0);
        h.observe(3.0);
        let mut out = String::new();
        h.render_into(&mut out, "test_hist", "help text");
        assert!(out.contains("# TYPE test_hist histogram"));
        assert!(out.contains("test_hist_bucket{le=\"0.00005\"} 1"));
        assert!(out.contains("test_hist_bucket{le=\"2\"} 2"));
        assert!(out.contains("test_hist_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("test_hist_count 3"));
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            value.parse::<f64>().expect("sample value parses");
        }
    }

    #[test]
    fn gauge_round_trips() {
        let g = F64Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5e-9);
        assert_eq!(g.get(), 1.5e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        static BAD: [f64; 2] = [2.0, 1.0];
        let _ = Histogram::new(&BAD);
    }
}
