//! The slow-query log behind `GET /debug/slow`.
//!
//! A fixed-capacity [`SeqRing`] of the most recent `/query` requests whose
//! end-to-end latency met the configured threshold. Recording happens on
//! the query hot path, so the whole structure is atomics only — no locks,
//! no allocation per record; rendering walks the seqlock ring and skips
//! torn slots.

use bepi_obs::ring::{SeqRing, RECORD_FIELDS};
use bepi_obs::trace::RequestId;
use std::time::Duration;

/// One retained slow query.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// Seed node of the query.
    pub seed: u64,
    /// End-to-end latency (admission to response render) in microseconds.
    pub latency_us: u64,
    /// Inner-solver iterations (0 for cache hits).
    pub iterations: u64,
    /// Final solver residual (0.0 for cache hits).
    pub residual: f64,
    /// Whether the response came from the cache.
    pub cache_hit: bool,
    /// Graph snapshot version that answered the query.
    pub version: u64,
    /// `top` parameter of the query.
    pub top_k: u64,
    /// Whether the approximate lane answered (mode resolved to approx).
    pub approx: bool,
    /// Correlation id of the request (minted at ingress, propagated via
    /// `X-Request-Id`); lets one grep tie this entry to the router's
    /// slowlog and the exported trace.
    pub request_id: RequestId,
    /// Shard id of the answering daemon (`None` for a standalone one).
    pub shard: Option<u64>,
}

/// Ring of the last N queries that exceeded the slow threshold.
#[derive(Debug)]
pub struct SlowQueryLog {
    ring: SeqRing,
    threshold: Duration,
}

impl SlowQueryLog {
    /// Creates a log retaining `entries` queries at or above `threshold`.
    /// A zero threshold records every query (useful for tests and
    /// debugging sessions).
    pub fn new(entries: usize, threshold: Duration) -> SlowQueryLog {
        SlowQueryLog {
            ring: SeqRing::new(entries.max(1)),
            threshold,
        }
    }

    /// The configured latency threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records a query if it met the threshold. Lock-free.
    pub fn record(&self, q: &SlowQuery) {
        if Duration::from_micros(q.latency_us) < self.threshold {
            return;
        }
        let mut fields = [0u64; RECORD_FIELDS];
        fields[0] = q.seed;
        fields[1] = q.latency_us;
        fields[2] = q.iterations;
        fields[3] = q.residual.to_bits();
        fields[4] = u64::from(q.cache_hit);
        fields[5] = q.version;
        fields[6] = q.top_k;
        fields[7] = u64::from(q.approx);
        fields[8] = q.request_id.hi;
        fields[9] = q.request_id.lo;
        // Shard ids are biased by one so 0 can mean "standalone daemon".
        fields[10] = q.shard.map_or(0, |s| s + 1);
        self.ring.push(fields);
    }

    /// The retained slow queries, newest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|f| SlowQuery {
                seed: f[0],
                latency_us: f[1],
                iterations: f[2],
                residual: f64::from_bits(f[3]),
                cache_hit: f[4] != 0,
                version: f[5],
                top_k: f[6],
                approx: f[7] != 0,
                request_id: RequestId { hi: f[8], lo: f[9] },
                shard: f[10].checked_sub(1),
            })
            .collect()
    }

    /// Renders the `GET /debug/slow` JSON body, newest entry first.
    pub fn render_json(&self) -> String {
        let entries = self.entries();
        let mut body = format!(
            "{{\"threshold_us\":{},\"capacity\":{},\"entries\":[",
            self.threshold.as_micros(),
            self.ring.capacity()
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"request_id\":\"{}\",\"seed\":{},\"latency_us\":{},\"iterations\":{},\
                 \"residual\":{},\"cache_hit\":{},\"version\":{},\"top\":{},\"approx\":{},\
                 \"shard\":{}}}",
                e.request_id.to_hex(),
                e.seed,
                e.latency_us,
                e.iterations,
                fmt_residual(e.residual),
                e.cache_hit,
                e.version,
                e.top_k,
                e.approx,
                fmt_shard(e.shard)
            ));
        }
        body.push_str("]}");
        body
    }
}

fn fmt_residual(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn fmt_shard(shard: Option<u64>) -> String {
    shard.map_or("null".to_string(), |s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(seed: u64, latency_us: u64) -> SlowQuery {
        SlowQuery {
            seed,
            latency_us,
            iterations: seed + 1,
            residual: 1e-10,
            cache_hit: seed % 2 == 0,
            version: 1,
            top_k: 10,
            approx: false,
            request_id: RequestId {
                hi: seed,
                lo: seed * 3,
            },
            shard: None,
        }
    }

    #[test]
    fn threshold_filters_fast_queries() {
        let log = SlowQueryLog::new(8, Duration::from_millis(10));
        log.record(&q(1, 500)); // fast: dropped
        log.record(&q(2, 10_000)); // exactly at threshold: kept
        log.record(&q(3, 50_000)); // slow: kept
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seed, 3, "newest first");
        assert_eq!(entries[1].seed, 2);
    }

    #[test]
    fn zero_threshold_records_everything_and_evicts_oldest() {
        let log = SlowQueryLog::new(3, Duration::ZERO);
        for seed in 0..7 {
            log.record(&q(seed, 100));
        }
        let seeds: Vec<u64> = log.entries().iter().map(|e| e.seed).collect();
        assert_eq!(seeds, vec![6, 5, 4], "oldest evicted in order");
    }

    #[test]
    fn json_round_trips_fields() {
        let log = SlowQueryLog::new(4, Duration::ZERO);
        let rid = RequestId::mint();
        log.record(&SlowQuery {
            seed: 42,
            latency_us: 1234,
            iterations: 9,
            residual: 3.5e-10,
            cache_hit: false,
            version: 7,
            top_k: 5,
            approx: true,
            request_id: rid,
            shard: Some(2),
        });
        let json = log.render_json();
        assert!(json.starts_with("{\"threshold_us\":0,\"capacity\":4,\"entries\":["));
        assert!(json.contains(&format!("\"request_id\":\"{}\"", rid.to_hex())));
        assert!(json.contains("\"shard\":2"));
        assert!(json.contains("\"seed\":42"));
        assert!(json.contains("\"latency_us\":1234"));
        assert!(json.contains("\"iterations\":9"));
        assert!(json.contains("\"residual\":3.5e-10"));
        assert!(json.contains("\"cache_hit\":false"));
        assert!(json.contains("\"version\":7"));
        assert!(json.contains("\"top\":5"));
        assert!(json.contains("\"approx\":true"));
        assert!(json.ends_with("]}"));
    }
}
