//! Local community detection: RWR + sweep cut.
//!
//! Following the local-partitioning line of work the paper cites
//! (Andersen et al.; Gleich & Seshadhri): compute RWR scores from a seed
//! with BePI, sweep them in degree-normalized order, and return the
//! prefix of minimal conductance as the seed's community.
//!
//! Run with: `cargo run --release -p bepi-core --example community_detection`

use bepi_core::community::{conductance, sweep_cut};
use bepi_core::prelude::*;
use bepi_graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planted-partition graph: 4 communities of 60 nodes; intra-edge
    // probability far above inter-edge probability.
    let mut rng = StdRng::seed_from_u64(42);
    let (k, size) = (4usize, 60usize);
    let n = k * size;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            let same = u / size == v / size;
            let p = if same { 0.12 } else { 0.004 };
            if rng.random::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    let graph = Graph::from_undirected_edges(n, &edges)?;
    println!(
        "planted-partition graph: {} nodes, {} edges, {} communities of {}",
        graph.n(),
        graph.m(),
        k,
        size
    );

    let solver = BePi::preprocess(&graph, &BePiConfig::default())?;

    let mut correct = 0usize;
    for community in 0..k {
        let seed = community * size + 7;
        let scores = solver.query(seed)?;
        let cut = sweep_cut(&graph, &scores, Some(2 * size))?;
        let truth: Vec<usize> = (community * size..(community + 1) * size).collect();
        let hits = cut.nodes.iter().filter(|&&u| u / size == community).count();
        let precision = hits as f64 / cut.nodes.len() as f64;
        let recall = hits as f64 / size as f64;
        println!(
            "seed {seed:>3} → community of {:>3} nodes, φ = {:.4}, precision {:.2}, recall {:.2} (true φ = {:.4})",
            cut.nodes.len(),
            cut.conductance,
            precision,
            recall,
            conductance(&graph, &truth)?
        );
        if precision > 0.9 && recall > 0.9 {
            correct += 1;
        }
    }
    println!("\nrecovered {correct}/{k} planted communities with precision & recall > 0.9");
    assert!(
        correct >= 3,
        "local clustering should recover most communities"
    );
    Ok(())
}
