//! Error type shared by all matrix constructors and kernels.

use std::fmt;

/// Errors produced by matrix construction, conversion, and kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: (usize, usize),
        /// Shape of the right/second operand.
        right: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        /// The offending (row, col) pair.
        index: (usize, usize),
        /// The declared matrix shape.
        shape: (usize, usize),
    },
    /// A structurally required diagonal entry is missing or numerically zero.
    ZeroDiagonal {
        /// Row (= column) of the offending diagonal entry.
        row: usize,
    },
    /// A dimension exceeds the `u32` index space used by the sparse formats.
    DimensionTooLarge {
        /// The offending dimension.
        dim: usize,
    },
    /// A vector argument has the wrong length.
    VectorLength {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// The input to a parser was malformed.
    Parse(String),
    /// An underlying IO operation failed (message-only so the error stays `Clone`).
    Io(String),
    /// A permutation array was not a bijection on `0..n`.
    InvalidPermutation(String),
    /// A numerical routine failed to make progress (e.g. singular pivot).
    Numerical(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "entry ({}, {}) outside {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::ZeroDiagonal { row } => {
                write!(f, "zero or missing diagonal at row {row}")
            }
            SparseError::DimensionTooLarge { dim } => {
                write!(f, "dimension {dim} exceeds u32 index space")
            }
            SparseError::VectorLength { expected, actual } => {
                write!(f, "vector length {actual}, expected {expected}")
            }
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "io error: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SparseError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "add",
        };
        let s = e.to_string();
        assert!(s.contains("add") && s.contains("2x3") && s.contains("4x5"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
