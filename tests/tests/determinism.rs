//! Determinism guarantees: the whole pipeline — generation, reordering,
//! preprocessing, querying — must be bit-for-bit reproducible, because
//! every experiment table in EXPERIMENTS.md depends on it.

use bepi_core::prelude::*;
use bepi_graph::Dataset;

#[test]
fn dataset_generation_is_bit_identical() {
    for ds in [Dataset::Slashdot, Dataset::Wikipedia] {
        assert_eq!(ds.generate(), ds.generate(), "{:?}", ds);
    }
}

#[test]
fn preprocessing_is_deterministic() {
    let g = Dataset::Slashdot.generate();
    let a = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let b = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    assert_eq!(a.permutation(), b.permutation());
    assert_eq!(a.schur(), b.schur());
    assert_eq!(a.preprocessed_bytes(), b.preprocessed_bytes());
    assert_eq!(a.stats().n1, b.stats().n1);
    assert_eq!(a.stats().s_nnz, b.stats().s_nnz);
}

#[test]
fn queries_are_bit_identical() {
    let g = Dataset::Slashdot.generate();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    for seed in [0usize, 100, 2000] {
        let a = solver.query(seed).unwrap();
        let b = solver.query(seed).unwrap();
        assert_eq!(a.scores, b.scores, "seed {seed}");
        assert_eq!(a.iterations, b.iterations);
    }
}

#[test]
fn stats_columns_are_stable() {
    // Anchor a few Table 2 values: a change here means the synthetic
    // suite shifted and EXPERIMENTS.md must be regenerated. (The edge
    // count moved from 6987 to 7220 when the offline build switched to
    // the vendored xoshiro-based `rand` shim; checked-in experiment
    // artifacts under experiments/ predate that swap.)
    let spec = Dataset::Slashdot.spec();
    let g = Dataset::Slashdot.generate();
    assert_eq!(g.n(), 2048);
    assert_eq!(g.m(), 7220);
    assert_eq!(spec.hub_ratio, 0.30);
}

#[test]
#[ignore = "stress test: full pipeline on the largest suite member (~1 min); run with --ignored"]
fn stress_full_pipeline_on_friendster_like() {
    let g = Dataset::Friendster.generate();
    assert!(g.m() > 2_000_000);
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let r = solver.query(12_345 % g.n()).unwrap();
    assert!(r.scores.iter().all(|v| v.is_finite() && *v >= -1e-9));
    // Spot-verify the residual on a random subset of rows.
    let h = bepi_core::rwr::build_h(&g, 0.05).unwrap();
    let hr = h.mul_vec(&r.scores).unwrap();
    let seed = 12_345 % g.n();
    for i in (0..g.n()).step_by(9_973) {
        let want = if i == seed { 0.05 } else { 0.0 };
        assert!((hr[i] - want).abs() < 1e-6, "row {i}");
    }
}
