//! Least-squares log-log slope fitting.
//!
//! Figure 5 reports the fitted slopes of preprocessing time, memory, and
//! query time against edge count (1.01 / 0.99 / 1.1 in the paper — near
//! linear scalability). This is an ordinary least-squares fit in log-log
//! space.

/// Fits `y = a * x^slope` by least squares on `(ln x, ln y)` and returns
/// the slope. Points with non-positive coordinates are skipped; returns
/// `None` with fewer than two usable points.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = i as f64 * 100.0;
                (x, 3.0 * x.powf(1.25))
            })
            .collect();
        let slope = loglog_slope(&pts).unwrap();
        assert!((slope - 1.25).abs() < 1e-10);
    }

    #[test]
    fn linear_scaling_is_slope_one() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert!((loglog_slope(&pts).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(loglog_slope(&[]), None);
        assert_eq!(loglog_slope(&[(1.0, 1.0)]), None);
        assert_eq!(loglog_slope(&[(0.0, 1.0), (-1.0, 2.0)]), None);
        // All x equal → vertical line.
        assert_eq!(loglog_slope(&[(2.0, 1.0), (2.0, 3.0)]), None);
    }

    #[test]
    fn noisy_fit_is_close() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = (i * i) as f64;
                let noise = 1.0 + 0.05 * ((i as f64).sin());
                (x, x.powf(0.99) * noise)
            })
            .collect();
        let slope = loglog_slope(&pts).unwrap();
        assert!((slope - 0.99).abs() < 0.05, "slope {slope}");
    }
}
