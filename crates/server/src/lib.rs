//! # bepi-server
//!
//! A long-running RWR query daemon over a preprocessed BePI index.
//!
//! The paper's economics argument (Section 2.3) — preprocess once, answer
//! many queries — only pays off when one preprocessed instance stays
//! resident and is shared across queries. This crate is that serving
//! layer: a std-only HTTP/1.1 server (`std::net::TcpListener`, no
//! protocol crates) with
//!
//! * a fixed worker pool sharing one read-only [`Arc<BePi>`],
//! * a bounded admission queue, plus a degraded overflow lane: when the
//!   main queue is full, connections route to a dedicated worker that
//!   answers `mode=auto` / `mode=approx` queries from the deterministic
//!   approximate engine (`bepi-walk`, responses tagged `X-Approx: 1`)
//!   and sheds everything else with `503 Retry-After`,
//! * a per-request deadline stamped at admission (queue wait counts),
//! * a sharded LRU cache over rendered responses keyed
//!   `(seed, top_k, graph_version, resolved mode)`, so hot seeds skip
//!   the solve entirely, hot-swaps can never serve stale bodies, and
//!   exact/approximate answers never cross lanes,
//! * `GET /query?seed=S&top=K&mode=exact|approx|auto`, `GET /healthz`,
//!   `GET /metrics` (Prometheus text format),
//! * live updates via `bepi_live::LiveEngine` ([`Server::start_live`]):
//!   `POST /edges` (JSON-lines batch), `POST /rebuild` (force flush),
//!   `GET /version`, with every `/query` response stamped
//!   `X-Graph-Version`, and
//! * graceful shutdown that drains queued and in-flight queries, then
//!   the background rebuild worker.
//!
//! ```no_run
//! use bepi_core::prelude::*;
//! use bepi_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let g = bepi_graph::generators::example_graph();
//! let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
//! let handle = Server::start(bepi, &ServerConfig::default()).unwrap();
//! println!("listening on http://{}", handle.local_addr());
//! handle.join(); // blocks until a ShutdownTrigger fires
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod shutdown;
pub mod slowlog;
pub mod trace;
pub mod worker;

pub use cache::{QueryKey, ResponseCache, ResponseMode};
pub use metrics::{
    parse_metric, render_live_metrics, render_obs_metrics, LiveMetricsSample, Metrics,
};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use trace::{TraceLog, TracedQuery};

use crate::queue::{bounded, PushError};
use crate::shutdown::Shutdown;
use crate::worker::{Job, WorkerContext};
use bepi_core::BePi;
use bepi_live::LiveEngine;
use bepi_obs::trace::{TraceEvent, TraceExporter};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7462`. Port `0` binds ephemeral
    /// (the bound address is reported by [`ServerHandle::local_addr`]).
    pub listen: String,
    /// Worker threads answering queries. `0` means "available
    /// parallelism" as reported by the OS.
    pub threads: usize,
    /// Total entries in the sharded response LRU. `0` disables caching.
    pub cache_entries: usize,
    /// Bounded admission-queue depth; connections beyond it get `503`.
    pub queue_depth: usize,
    /// Per-request deadline, stamped at admission.
    pub timeout: Duration,
    /// Queries whose end-to-end latency meets this threshold land in the
    /// slow-query log (`GET /debug/slow`). `Duration::ZERO` records every
    /// query.
    pub slow_query: Duration,
    /// Entries retained by the slow-query log ring.
    pub slow_log_entries: usize,
    /// Fraction of `queue_depth` at which `mode=auto` queries start
    /// routing to the approximate lane (graceful degradation kicks in
    /// *before* the queue is full and connections start overflowing).
    /// `0.0` serves every `auto` query approximately — a deterministic
    /// hook for tests and drills; values ≥ 1.0 degrade only via the
    /// overflow lane.
    pub pressure: f64,
    /// Shard id stamped on every response as `X-Shard` when this daemon
    /// runs as one shard of a `bepi route` fleet. `None` (the default)
    /// omits the header entirely.
    pub shard_id: Option<u64>,
    /// Entries retained by the traced-request ring (`GET /debug/trace`).
    pub trace_entries: usize,
    /// When set, every `?trace=1` query is appended to this file as
    /// Chrome trace-event JSON (load it in `chrome://tracing` or
    /// Perfetto). `None` (the default) disables the export; untraced
    /// queries never touch it either way.
    pub trace_export: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            threads: 0,
            cache_entries: 4096,
            queue_depth: 128,
            timeout: Duration::from_secs(10),
            slow_query: Duration::from_millis(100),
            slow_log_entries: 64,
            pressure: 0.75,
            shard_id: None,
            trace_entries: 64,
            trace_export: None,
        }
    }
}

impl ServerConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Main-queue depth at which `mode=auto` routes approximate:
    /// `ceil(pressure × queue_depth)`. Zero (or negative) means "always
    /// pressured"; `+inf` saturates to "never" (the cast saturates at
    /// `u64::MAX`, a depth the gauge cannot reach).
    fn pressure_slots(&self) -> u64 {
        let p = if self.pressure.is_nan() {
            0.75
        } else {
            self.pressure
        };
        if p <= 0.0 {
            return 0;
        }
        (p * self.queue_depth as f64).ceil() as u64
    }
}

/// The daemon. Constructed via [`Server::start`]; all state lives in the
/// returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `config.listen`, spawns the acceptor and the worker pool,
    /// and returns immediately. The index is served as a frozen snapshot:
    /// `/query` works, the live-update endpoints reject with an
    /// explanatory error.
    pub fn start(bepi: Arc<BePi>, config: &ServerConfig) -> std::io::Result<ServerHandle> {
        Self::start_live(LiveEngine::frozen(bepi), config)
    }

    /// Like [`Server::start`] but over an already-bound listener (used by
    /// tests that need to know the port before starting).
    pub fn start_on(
        bepi: Arc<BePi>,
        listener: TcpListener,
        config: &ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::start_live_on(LiveEngine::frozen(bepi), listener, config)
    }

    /// Binds `config.listen` and serves the given live engine: `/query`
    /// answers from its current snapshot, `POST /edges` / `POST /rebuild`
    /// feed its WAL and background rebuild worker.
    pub fn start_live(
        engine: Arc<LiveEngine>,
        config: &ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.listen)?;
        Self::start_live_on(engine, listener, config)
    }

    /// Like [`Server::start_live`] but over an already-bound listener.
    pub fn start_live_on(
        engine: Arc<LiveEngine>,
        listener: TcpListener,
        config: &ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        let threads = config.effective_threads();
        // Compose worker × kernel parallelism: each of the `threads`
        // workers runs solver kernels, so unless the operator pinned the
        // kernel count explicitly (BEPI_THREADS / --threads on the CLI's
        // query commands), default each worker's kernels to its share of
        // the machine. On a 8-core box with 4 workers that is 2 kernel
        // threads per query — never 4 × 8 oversubscription.
        bepi_par::set_default_threads((bepi_par::available() / threads).max(1));
        let metrics = Arc::new(Metrics::default());
        let cache = Arc::new(ResponseCache::new(
            config.cache_entries,
            threads.next_power_of_two().min(16),
        ));
        let shutdown = Shutdown::new(addr);
        let (tx, rx) = bounded::<Job>(config.queue_depth);
        // Overflow lane: connections the main queue cannot absorb are
        // re-tagged degraded and parked here for the dedicated degraded
        // worker, which answers only approximate-eligible `/query`s.
        let (degraded_tx, degraded_rx) = bounded::<Job>(config.queue_depth.max(1));

        let slow_log = Arc::new(SlowQueryLog::new(
            config.slow_log_entries,
            config.slow_query,
        ));
        let trace_log = Arc::new(TraceLog::new(config.trace_entries));
        let exporter = match &config.trace_export {
            Some(path) => {
                let pid = config.shard_id.unwrap_or(0);
                let name = match config.shard_id {
                    Some(s) => format!("bepi-shard-{s}"),
                    None => "bepi-server".to_string(),
                };
                let exporter = TraceExporter::create(path, &[(pid, &name)])?;
                export_preprocess_phases(&exporter, pid);
                Some(Arc::new(exporter))
            }
            None => None,
        };
        let ctx = Arc::new(WorkerContext {
            engine: Arc::clone(&engine),
            cache: Arc::clone(&cache),
            metrics: Arc::clone(&metrics),
            slow_log,
            trace_log,
            exporter: exporter.clone(),
            shard_id: config.shard_id,
            pressure_slots: config.pressure_slots(),
            timeout: config.timeout,
            shutdown: Arc::clone(&shutdown),
            shard: config.shard_id.map(|s| s.to_string()),
            keepalive_threads: std::sync::atomic::AtomicUsize::new(0),
            // Enough headroom for a scatter-gather front tier (a router
            // pools a handful of sockets per shard) without letting a
            // misbehaving client turn persistent connections into an
            // unbounded thread fleet.
            keepalive_cap: (4 * threads).clamp(8, 64),
        });
        let mut workers: Vec<JoinHandle<()>> = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("bepi-worker-{i}"))
                    .spawn(move || worker::worker_loop(rx, ctx))
            })
            .collect::<std::io::Result<_>>()?;
        drop(rx);
        // One worker is enough for the overflow lane: the approximate
        // engines it runs are orders of magnitude cheaper than the exact
        // solve, and a saturated daemon should spend its cores on the
        // queries it already admitted.
        workers.push({
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("bepi-degraded".to_string())
                .spawn(move || worker::worker_loop(degraded_rx, ctx))?
        });

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let timeout = config.timeout;
            std::thread::Builder::new()
                .name("bepi-acceptor".to_string())
                .spawn(move || {
                    accept_loop(listener, tx, degraded_tx, shutdown, metrics, timeout);
                })?
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor,
            workers,
            metrics,
            engine,
            exporter,
        })
    }
}

/// Replays the phase accumulators recorded so far (index load, LU
/// factorization, reordering, …) into the trace file as back-to-back
/// spans on a dedicated lane, so a serve-path trace also shows what
/// startup cost. Accumulators lose per-span timestamps, so the spans are
/// laid out sequentially ending at "now".
fn export_preprocess_phases(exporter: &TraceExporter, pid: u64) {
    let phases = bepi_obs::snapshot();
    let total_us: u64 = phases.iter().map(|p| p.total.as_micros() as u64).sum();
    let mut cursor = bepi_obs::clock_us().saturating_sub(total_us);
    for p in &phases {
        let us = p.total.as_micros() as u64;
        if us == 0 {
            continue;
        }
        let count = p.count.to_string();
        exporter.emit(&TraceEvent {
            name: &p.name,
            cat: "preprocess",
            ts_us: cursor,
            dur_us: us,
            pid,
            tid: 0,
            args: &[("spans", &count)],
        });
        cursor += us;
    }
}

/// Admission: accept, stamp the deadline, try to enqueue. When the main
/// queue is full the connection is re-tagged [`worker::Lane::Degraded`]
/// and offered to the overflow lane (whose worker serves only
/// approximate-eligible `/query`s); only when that lane is also full is
/// the connection shed with `503`. Exits (dropping both queue senders,
/// which lets the workers drain and stop) once shutdown is requested.
fn accept_loop(
    listener: TcpListener,
    tx: queue::Producer<Job>,
    degraded_tx: queue::Producer<Job>,
    shutdown: Arc<Shutdown>,
    metrics: Arc<Metrics>,
    timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.is_requested() {
                    break;
                }
                continue;
            }
        };
        // Request/response over small messages: never trade latency for
        // segment coalescing (Nagle + delayed ACK stalls keep-alive
        // connections by tens of milliseconds).
        stream.set_nodelay(true).ok();
        if shutdown.is_requested() {
            // The wake connection (or a straggler racing it) is dropped
            // unanswered; admission is closed.
            break;
        }
        Metrics::inc(&metrics.connections_total);
        let now = Instant::now();
        let job = Job {
            stream,
            deadline: now + timeout,
            accepted_at: now,
            lane: worker::Lane::Normal,
        };
        // Incremented before the push so a worker's decrement can never
        // observe the gauge at zero and wrap; shed paths undo it. The
        // gauge tracks the *main* queue only — degraded admissions have
        // their own counter.
        metrics
            .queue_depth
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match tx.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full(mut job)) => {
                metrics
                    .queue_depth
                    .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                job.lane = worker::Lane::Degraded;
                match degraded_tx.try_push(job) {
                    Ok(()) => Metrics::inc(&metrics.degraded_total),
                    Err(PushError::Full(job) | PushError::Closed(job)) => {
                        worker::shed_connection(job.stream, &metrics);
                    }
                }
            }
            Err(PushError::Closed(_)) => {
                metrics
                    .queue_depth
                    .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                break;
            }
        }
    }
    // Dropping `tx` and `degraded_tx` closes both queues: workers finish
    // everything already admitted, then exit — the graceful drain.
}

/// A handle on a running server: its bound address, metrics, and the
/// means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    engine: Arc<LiveEngine>,
    exporter: Option<Arc<TraceExporter>>,
}

/// A cloneable trigger that requests graceful shutdown from any thread
/// (the daemon's SIGTERM-equivalent).
#[derive(Clone)]
pub struct ShutdownTrigger {
    shutdown: Arc<Shutdown>,
}

impl ShutdownTrigger {
    /// Requests shutdown: admission stops, queued and in-flight requests
    /// drain, workers exit.
    pub fn fire(&self) {
        self.shutdown.request();
    }
}

impl ServerHandle {
    /// The address actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics, shared with the workers.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A trigger other threads can use to stop the server.
    pub fn trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// The live engine behind the daemon (frozen for static indexes).
    pub fn engine(&self) -> Arc<LiveEngine> {
        Arc::clone(&self.engine)
    }

    /// Blocks until the server has fully stopped (someone fired a
    /// [`ShutdownTrigger`]) and every queued request has been answered.
    /// The rebuild worker is drained last — a rebuild already in flight
    /// finishes (including its checkpoint) before this returns.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.engine.shutdown();
        // Terminate the trace-event array only after every worker has
        // drained — no event can race the closing bracket.
        if let Some(exporter) = &self.exporter {
            exporter.close();
        }
    }

    /// Graceful shutdown: stop admission, drain queued and in-flight
    /// requests, join all threads.
    pub fn shutdown(self) {
        self.shutdown.request();
        self.join();
    }
}
