//! Persistence robustness: round-trips across configurations and graphs,
//! and corruption never panics — it errors.

use bepi_core::persist::{load, save};
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use bepi_tests::fixture_zoo;

#[test]
fn roundtrip_across_fixture_zoo() {
    for fx in fixture_zoo().into_iter().take(6) {
        let original = BePi::preprocess(&fx.graph, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        let seed = fx.graph.n() / 2;
        if fx.graph.n() == 0 {
            continue;
        }
        assert_eq!(
            original.query(seed).unwrap().scores,
            restored.query(seed).unwrap().scores,
            "{}",
            fx.name
        );
    }
}

#[test]
fn roundtrip_on_dataset_scale_instance() {
    let g = Dataset::Slashdot.generate();
    let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let mut buf = Vec::new();
    save(&original, &mut buf).unwrap();
    // Serialized size is the same order as the reported logical memory.
    let logical = original.preprocessed_bytes();
    assert!(
        buf.len() < logical * 2 + 4096,
        "file {} vs logical {}",
        buf.len(),
        logical
    );
    let restored = load(&buf[..]).unwrap();
    assert_eq!(restored.node_count(), g.n());
    assert_eq!(
        original.query(123).unwrap().scores,
        restored.query(123).unwrap().scores
    );
}

#[test]
fn truncation_at_any_cut_point_errors_not_panics() {
    let g = bepi_graph::generators::erdos_renyi(60, 250, 3).unwrap();
    let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let mut buf = Vec::new();
    save(&original, &mut buf).unwrap();
    // Sweep truncation points (coarse grid + the first 64 bytes densely).
    let mut cuts: Vec<usize> = (0..64.min(buf.len())).collect();
    cuts.extend((64..buf.len()).step_by(97));
    for cut in cuts {
        let r = load(&buf[..cut]);
        assert!(r.is_err(), "truncation at {cut} must error");
    }
}

#[test]
fn bitflip_in_header_errors() {
    let g = bepi_graph::generators::cycle(12);
    let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let mut buf = Vec::new();
    save(&original, &mut buf).unwrap();
    // Corrupt magic.
    let mut bad = buf.clone();
    bad[0] ^= 0xFF;
    assert!(load(&bad[..]).is_err());
    // Corrupt version.
    let mut bad = buf.clone();
    bad[4] ^= 0xFF;
    assert!(load(&bad[..]).is_err());
}

#[test]
fn garbage_payload_is_rejected_or_roundtrips_consistently() {
    // Flipping bytes in the payload may corrupt values (undetectable
    // without checksums) or break structure (must error). Either way:
    // no panic, and structural validation rejects malformed CSR.
    let g = bepi_graph::generators::erdos_renyi(40, 160, 5).unwrap();
    let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let mut buf = Vec::new();
    save(&original, &mut buf).unwrap();
    for pos in (8..buf.len()).step_by(131) {
        let mut bad = buf.clone();
        bad[pos] = bad[pos].wrapping_add(0x5B);
        let _ = load(&bad[..]); // must not panic
    }
}
