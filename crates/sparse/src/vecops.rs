//! Dense vector kernels shared by the iterative solvers.
//!
//! GMRES, power iteration, and the accuracy experiments all operate on
//! dense vectors; these free functions keep those hot loops allocation-free.
//!
//! Reductions ([`dot`], [`norm2`]) are *chunk-deterministic*: vectors
//! longer than [`bepi_par::DETERMINISTIC_CHUNK`] are summed as fixed-size
//! chunk partials combined in index order, so the floating-point grouping
//! depends only on the length — never on the thread count — and parallel
//! runs are bit-identical to serial ones. [`axpy`] parallelizes over
//! disjoint element ranges, which is trivially deterministic.

use bepi_par::DETERMINISTIC_CHUNK;

/// Minimum vector length before a dense kernel fans out to threads.
const PAR_VEC_MIN_LEN: usize = 65_536;

/// Dot product. Panics in debug builds on length mismatch.
///
/// Chunk-deterministic and parallel for long vectors (see module docs).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let threads = if a.len() >= PAR_VEC_MIN_LEN {
        bepi_par::get_threads()
    } else {
        1
    };
    dot_threads(a, b, threads)
}

/// [`dot`] with an explicit thread count, bypassing the global knob and
/// the size threshold. Bit-identical to `dot_threads(a, b, 1)` for every
/// `threads` because the chunk grouping is fixed by the length.
pub fn dot_threads(a: &[f64], b: &[f64], threads: usize) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n <= DETERMINISTIC_CHUNK {
        return dot_serial(a, b);
    }
    let nchunks = n.div_ceil(DETERMINISTIC_CHUNK);
    let mut partials = vec![0.0f64; nchunks];
    let threads = threads.min(nchunks);
    let fill = |first_chunk: usize, out: &mut [f64]| {
        for (k, p) in out.iter_mut().enumerate() {
            let s = (first_chunk + k) * DETERMINISTIC_CHUNK;
            let e = (s + DETERMINISTIC_CHUNK).min(n);
            *p = dot_serial(&a[s..e], &b[s..e]);
        }
    };
    if threads <= 1 {
        fill(0, &mut partials);
    } else {
        let ranges = bepi_par::even_ranges(nchunks, threads);
        bepi_par::par_chunks_mut(&mut partials, &ranges, |_, first, out| fill(first, out));
    }
    // Combine in chunk order: grouping depends only on n.
    partials.iter().sum()
}

/// The single-chunk dot body; every path (serial, each parallel chunk)
/// reduces through this exact left-to-right fold.
#[inline]
fn dot_serial(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// `y += alpha * x`. Parallel over disjoint element ranges for long
/// vectors; elementwise, so the result is identical at any thread count.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let threads = if y.len() >= PAR_VEC_MIN_LEN {
        bepi_par::get_threads()
    } else {
        1
    };
    axpy_threads(alpha, x, y, threads);
}

/// [`axpy`] with an explicit thread count, bypassing the global knob and
/// the size threshold. Elementwise, hence identical at any count.
pub fn axpy_threads(alpha: f64, x: &[f64], y: &mut [f64], threads: usize) {
    debug_assert_eq!(x.len(), y.len());
    if threads <= 1 || y.is_empty() {
        axpy_serial(alpha, x, y);
        return;
    }
    let ranges = bepi_par::even_ranges(y.len(), threads);
    bepi_par::par_chunks_mut(y, &ranges, |_, start, chunk| {
        axpy_serial(alpha, &x[start..start + chunk.len()], chunk)
    });
}

/// The serial axpy body shared by both paths.
#[inline]
fn axpy_serial(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `||a - b||_2` without allocating the difference.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Normalizes `x` to unit L2 norm in place; returns the original norm.
/// A zero vector is left unchanged and 0.0 is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Indices of the `k` largest entries, descending, ties broken by index.
///
/// This is the "top-k ranking" operation of Figure 2: turn an RWR score
/// vector into a ranked node list.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, -2.0];
        let b = [3.0, 0.0, 1.0];
        assert_eq!(dot(&a, &b), 1.0);
        assert_eq!(norm2(&a), 3.0);
        assert_eq!(norm1(&a), 5.0);
        assert_eq!(norm_inf(&a), 2.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn dist2_matches_manual() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(dist2(&a, &b), 5.0);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        let mut z = [0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn dot_is_bit_identical_across_thread_counts() {
        // Long enough for several chunks, awkward tail included.
        let n = DETERMINISTIC_CHUNK * 3 + 1234;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 * 1e-3 - 0.5)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 40503) % 997) as f64 * 1e-3 - 0.25)
            .collect();
        let serial = dot_threads(&a, &b, 1);
        for t in [2, 3, 8] {
            assert_eq!(dot_threads(&a, &b, t).to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn axpy_is_bit_identical_across_thread_counts() {
        let n = 100_001;
        let x: Vec<f64> = (0..n).map(|i| (i % 113) as f64 * 0.017 - 1.0).collect();
        let mut serial: Vec<f64> = (0..n).map(|i| (i % 57) as f64 * 0.031).collect();
        let base = serial.clone();
        axpy_threads(0.37, &x, &mut serial, 1);
        for t in [2, 3, 8] {
            let mut y = base.clone();
            axpy_threads(0.37, &x, &mut y, t);
            assert_eq!(y, serial);
        }
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let scores = [0.1, 0.5, 0.5, 0.9, 0.0];
        assert_eq!(top_k_indices(&scores, 3), vec![3, 1, 2]);
        assert_eq!(top_k_indices(&scores, 10), vec![3, 1, 2, 0, 4]);
        assert_eq!(top_k_indices(&scores, 0), Vec::<usize>::new());
    }
}
