//! Regenerates the ablation study; see `bepi_bench::experiments::ablation`.

fn main() {
    print!("{}", bepi_bench::experiments::ablation::run());
}
