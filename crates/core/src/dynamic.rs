//! Dynamic graphs via batch re-preprocessing.
//!
//! Section 5 of the paper: "A conventional strategy for preprocessing
//! methods on dynamic graphs is batch update, e.g., it stores update
//! information such as edge insertions for one day, and re-preprocesses
//! the changed graph at midnight. Note that our method is desirable for
//! this case since our method is efficient in terms of preprocessing
//! time." This module implements exactly that strategy: edge updates are
//! buffered and the BePI instance is rebuilt either on demand or
//! automatically once the buffer exceeds a threshold.
//!
//! On top of the paper's batch strategy, the rebuild itself picks between
//! two paths (the symbolic/numeric split of [`bepi_incr`]): a batch that
//! provably preserves the frozen [`bepi_incr::SymbolicPlan`] takes a
//! KLU-style numeric-only refactorization ([`BePi::refactor`] — only the
//! touched `H11` blocks, Schur rows, and ILU values are recomputed),
//! while a structural batch falls back to the full preprocessing
//! pipeline. Both paths serve exactly the same answers; the numeric path
//! is bit-identical to a plan-frozen full factor.

use crate::bepi::{BePi, BePiConfig};
use crate::rwr::{RwrScores, RwrSolver};
use bepi_graph::Graph;
use bepi_incr::{classify, Classification};
use bepi_sparse::{Coo, Csr, Result};

/// Which rebuild path produced the currently served index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildKind {
    /// The initial preprocess at construction (or load) time.
    Initial,
    /// A full re-preprocess: structural batch, or a numeric attempt that
    /// had to fall back.
    Full,
    /// A numeric-only refactorization under the frozen symbolic plan.
    Numeric,
}

impl RebuildKind {
    /// Stable lower-case name for logs, metrics, and the version JSON.
    pub fn name(self) -> &'static str {
        match self {
            RebuildKind::Initial => "initial",
            RebuildKind::Full => "full",
            RebuildKind::Numeric => "numeric",
        }
    }
}

/// A buffered graph mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the edge `u → v` with weight 1 (no-op if already present —
    /// inserts are idempotent, so replaying a logged batch over a state
    /// that already contains it changes nothing).
    Insert(usize, usize),
    /// Remove the edge `u → v` entirely (no-op if absent).
    Remove(usize, usize),
}

/// A BePI instance over a mutable graph with batch re-preprocessing.
///
/// Queries are answered from the last preprocessed snapshot; buffered
/// updates become visible after [`DynamicBePi::flush`] (called
/// automatically when the buffer reaches `auto_flush_threshold`).
#[derive(Debug, Clone)]
pub struct DynamicBePi {
    graph: Graph,
    solver: BePi,
    config: BePiConfig,
    pending: Vec<EdgeUpdate>,
    /// Buffer size at which updates trigger an automatic rebuild.
    pub auto_flush_threshold: usize,
    rebuilds: usize,
    numeric_rebuilds: usize,
    full_rebuilds: usize,
    last_rebuild_kind: RebuildKind,
}

impl DynamicBePi {
    /// Preprocesses the initial graph.
    pub fn new(graph: Graph, config: BePiConfig) -> Result<Self> {
        let solver = BePi::preprocess(&graph, &config)?;
        Ok(Self {
            graph,
            solver,
            config,
            pending: Vec::new(),
            auto_flush_threshold: 10_000,
            rebuilds: 0,
            numeric_rebuilds: 0,
            full_rebuilds: 0,
            last_rebuild_kind: RebuildKind::Initial,
        })
    }

    /// Wraps an already-preprocessed solver (e.g. loaded from an index
    /// file) without paying a fresh preprocess. The solver must have been
    /// built from exactly `graph`.
    pub fn from_parts(graph: Graph, solver: BePi, config: BePiConfig) -> Self {
        Self {
            graph,
            solver,
            config,
            pending: Vec::new(),
            auto_flush_threshold: 10_000,
            rebuilds: 0,
            numeric_rebuilds: 0,
            full_rebuilds: 0,
            last_rebuild_kind: RebuildKind::Initial,
        }
    }

    /// Buffers an update; rebuilds if the buffer hit the threshold.
    /// Returns `true` when a rebuild happened.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<bool> {
        let n = self.graph.n();
        let (u, v) = match update {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
        };
        if u >= n || v >= n {
            return Err(bepi_sparse::SparseError::IndexOutOfBounds {
                index: (u, v),
                shape: (n, n),
            });
        }
        self.pending.push(update);
        if self.pending.len() >= self.auto_flush_threshold {
            self.flush()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Buffers a whole batch of updates at once, rebuilding **at most
    /// once** (callers that loop over [`DynamicBePi::apply`] can trigger
    /// an expensive rebuild mid-batch every time the buffer crosses the
    /// threshold). The batch is validated up front — an out-of-range
    /// update rejects the whole batch without buffering anything — and
    /// the buffer is deduplicated: an insert later cancelled by a remove
    /// of the same `(u, v)` never reaches the rebuild. Returns `true`
    /// when a rebuild happened.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<bool> {
        let n = self.graph.n();
        for update in updates {
            let (EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v)) = *update;
            if u >= n || v >= n {
                return Err(bepi_sparse::SparseError::IndexOutOfBounds {
                    index: (u, v),
                    shape: (n, n),
                });
            }
        }
        self.pending.extend_from_slice(updates);
        self.pending = dedup_opposing(&self.pending);
        if self.pending.len() >= self.auto_flush_threshold {
            self.flush()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Buffers an edge insertion (`u → v`).
    pub fn insert_edge(&mut self, u: usize, v: usize) -> Result<bool> {
        self.apply(EdgeUpdate::Insert(u, v))
    }

    /// Buffers an edge removal.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<bool> {
        self.apply(EdgeUpdate::Remove(u, v))
    }

    /// Applies all buffered updates to the graph and rebuilds the index,
    /// picking the cheapest legal path: a numeric-only refactorization
    /// when [`bepi_incr::classify`] proves the batch preserves the frozen
    /// symbolic plan, a full re-preprocess otherwise. A refactor error
    /// never drops the batch — it falls back to the full pipeline.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let new_graph = apply_updates(&self.graph, &self.pending)?;
        let sources: Vec<usize> = self
            .pending
            .iter()
            .map(|u| match *u {
                EdgeUpdate::Insert(a, _) | EdgeUpdate::Remove(a, _) => a,
            })
            .collect();
        let plan = self.solver.symbolic_plan();
        let kind = match classify(&plan, &self.graph, &new_graph, &sources) {
            Classification::NumericOnly(dirty) => match self.solver.refactor(&new_graph, &dirty) {
                Ok(refactored) => {
                    self.solver = refactored;
                    RebuildKind::Numeric
                }
                Err(_) => {
                    self.solver = BePi::preprocess(&new_graph, &self.config)?;
                    RebuildKind::Full
                }
            },
            Classification::Structural(_) => {
                self.solver = BePi::preprocess(&new_graph, &self.config)?;
                RebuildKind::Full
            }
        };
        self.graph = new_graph;
        self.pending.clear();
        self.rebuilds += 1;
        match kind {
            RebuildKind::Numeric => self.numeric_rebuilds += 1,
            _ => self.full_rebuilds += 1,
        }
        self.last_rebuild_kind = kind;
        Ok(())
    }

    /// Number of buffered, not-yet-visible updates.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Number of re-preprocessing rounds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Rebuilds that took the numeric-only refactorization path.
    pub fn numeric_rebuilds(&self) -> usize {
        self.numeric_rebuilds
    }

    /// Rebuilds that ran the full preprocessing pipeline.
    pub fn full_rebuilds(&self) -> usize {
        self.full_rebuilds
    }

    /// Which path produced the currently served index.
    pub fn last_rebuild_kind(&self) -> RebuildKind {
        self.last_rebuild_kind
    }

    /// The current graph *including* buffered updates not yet flushed is
    /// not materialized; this returns the last preprocessed snapshot.
    pub fn snapshot(&self) -> &Graph {
        &self.graph
    }

    /// Queries against the latest snapshot (buffered updates invisible).
    pub fn query(&self, seed: usize) -> Result<RwrScores> {
        self.solver.query(seed)
    }

    /// Flushes buffered updates, then queries — always-fresh semantics.
    pub fn query_fresh(&mut self, seed: usize) -> Result<RwrScores> {
        self.flush()?;
        self.solver.query(seed)
    }

    /// The underlying solver (e.g. for memory accounting).
    pub fn solver(&self) -> &BePi {
        &self.solver
    }
}

/// Drops updates that can never affect the outcome: an `Insert(u, v)`
/// followed (anywhere later in the batch) by a `Remove(u, v)` is
/// cancelled by it, and of several removes on the same edge with no
/// insert in between only the last survives. Order of the surviving
/// updates is preserved, so per edge the result is at most one `Remove`
/// followed only by `Insert`s. One forward pass, O(batch).
pub fn dedup_opposing(updates: &[EdgeUpdate]) -> Vec<EdgeUpdate> {
    use std::collections::HashMap;
    struct PerEdge {
        live_inserts: Vec<usize>,
        last_remove: Option<usize>,
    }
    let mut alive = vec![true; updates.len()];
    let mut per_edge: HashMap<(usize, usize), PerEdge> = HashMap::new();
    for (i, update) in updates.iter().enumerate() {
        match *update {
            EdgeUpdate::Insert(u, v) => {
                per_edge
                    .entry((u, v))
                    .or_insert_with(|| PerEdge {
                        live_inserts: Vec::new(),
                        last_remove: None,
                    })
                    .live_inserts
                    .push(i);
            }
            EdgeUpdate::Remove(u, v) => {
                let e = per_edge.entry((u, v)).or_insert_with(|| PerEdge {
                    live_inserts: Vec::new(),
                    last_remove: None,
                });
                for &j in &e.live_inserts {
                    alive[j] = false;
                }
                e.live_inserts.clear();
                // An earlier remove with no insert since is redundant.
                if let Some(r) = e.last_remove.replace(i) {
                    alive[r] = false;
                }
            }
        }
    }
    updates
        .iter()
        .zip(&alive)
        .filter_map(|(u, &a)| a.then_some(*u))
        .collect()
}

/// Applies a batch of updates to a graph. Inserts are **idempotent**:
/// an edge already present (or inserted twice in one batch) keeps its
/// existing weight rather than being summed — `apply_updates(apply_updates(g,
/// b), b)` equals `apply_updates(g, b)`, which is what lets a WAL batch
/// be replayed over a checkpoint that may already contain it. Within the
/// batch, updates apply in order *per edge*: an insert that follows a
/// removal of the same edge re-adds it at weight 1, an insert followed
/// by a removal is cancelled (see [`dedup_opposing`]).
pub fn apply_updates(g: &Graph, updates: &[EdgeUpdate]) -> Result<Graph> {
    use std::collections::HashSet;
    let updates = dedup_opposing(updates);
    // After dedup, every surviving insert comes after any remove of the
    // same edge, so removals strip only pre-existing edges.
    let removals: HashSet<(u32, u32)> = updates
        .iter()
        .filter_map(|u| match u {
            EdgeUpdate::Remove(a, b) => Some((*a as u32, *b as u32)),
            EdgeUpdate::Insert(..) => None,
        })
        .collect();
    let n = g.n();
    let adj: &Csr = g.adjacency();
    let mut coo = Coo::with_capacity(n, n, adj.nnz() + updates.len())?;
    // `present` guards idempotency: `Csr::from_coo` *sums* duplicate
    // entries, so re-inserting a kept edge must never push a second
    // coordinate (the weight would silently inflate to w + 1).
    let mut present: HashSet<(u32, u32)> = HashSet::with_capacity(adj.nnz());
    for (r, c, w) in adj.iter() {
        if !removals.contains(&(r as u32, c as u32)) {
            coo.push(r, c, w)?;
            present.insert((r as u32, c as u32));
        }
    }
    for u in &updates {
        if let EdgeUpdate::Insert(a, b) = u {
            if present.insert((*a as u32, *b as u32)) {
                coo.push(*a, *b, 1.0)?;
            }
        }
    }
    Graph::from_adjacency(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;
    use bepi_tests_support::*;

    // Minimal local copy of the reference helper (the shared fixture crate
    // lives above core in the dependency graph).
    mod bepi_tests_support {
        use bepi_graph::Graph;
        use bepi_solver::power::{power_iteration, PowerConfig};

        pub fn reference(g: &Graph, seed: usize) -> Vec<f64> {
            let a = g.row_normalized();
            let mut q = vec![0.0; g.n()];
            q[seed] = 1.0;
            power_iteration(
                &a,
                0.05,
                &q,
                &PowerConfig {
                    tol: 1e-13,
                    max_iters: 100_000,
                },
                false,
            )
            .unwrap()
            .r
        }
    }

    #[test]
    fn inserts_become_visible_after_flush() {
        let g = generators::cycle(10);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        let before = dyn_solver.query(0).unwrap().scores[5];
        dyn_solver.insert_edge(0, 5).unwrap();
        // Not yet visible.
        assert_eq!(dyn_solver.query(0).unwrap().scores[5], before);
        assert_eq!(dyn_solver.pending_updates(), 1);
        dyn_solver.flush().unwrap();
        let after = dyn_solver.query(0).unwrap().scores[5];
        assert!(after > before, "direct edge must raise the score");
        assert_eq!(dyn_solver.rebuilds(), 1);
    }

    #[test]
    fn flushed_state_matches_from_scratch_preprocess() {
        let g = generators::erdos_renyi(80, 300, 9).unwrap();
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.insert_edge(1, 2).unwrap();
        dyn_solver.insert_edge(3, 4).unwrap();
        dyn_solver.remove_edge(1, 2).unwrap();
        dyn_solver.flush().unwrap();
        let got = dyn_solver.query(3).unwrap();
        let want = reference(dyn_solver.snapshot(), 3);
        for (a, b) in got.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
        // (1,2) was inserted then removed in the same batch: must be gone.
        assert_eq!(dyn_solver.snapshot().adjacency().get(1, 2), 0.0);
        assert_eq!(dyn_solver.snapshot().adjacency().get(3, 4), 1.0);
    }

    #[test]
    fn auto_flush_at_threshold() {
        let g = generators::cycle(20);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.auto_flush_threshold = 3;
        assert!(!dyn_solver.insert_edge(0, 2).unwrap());
        assert!(!dyn_solver.insert_edge(0, 3).unwrap());
        assert!(dyn_solver.insert_edge(0, 4).unwrap()); // triggers rebuild
        assert_eq!(dyn_solver.pending_updates(), 0);
        assert_eq!(dyn_solver.rebuilds(), 1);
    }

    #[test]
    fn remove_then_insert_readds_edge() {
        let g = generators::cycle(6);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.remove_edge(0, 1).unwrap();
        dyn_solver.insert_edge(0, 1).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn removing_all_out_edges_creates_deadend() {
        let g = generators::cycle(5);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.remove_edge(2, 3).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().deadend_count(), 1);
        // Queries still work with the new deadend.
        let got = dyn_solver.query(0).unwrap();
        let want = reference(dyn_solver.snapshot(), 0);
        for (a, b) in got.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn query_fresh_flushes_first() {
        let g = generators::cycle(8);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        let before = dyn_solver.query(0).unwrap().scores[4];
        dyn_solver.insert_edge(0, 4).unwrap();
        let after = dyn_solver.query_fresh(0).unwrap().scores[4];
        assert!(after > before);
        assert_eq!(dyn_solver.pending_updates(), 0);
    }

    #[test]
    fn out_of_range_update_rejected() {
        let g = generators::cycle(4);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        assert!(dyn_solver.insert_edge(0, 4).is_err());
        assert!(dyn_solver.remove_edge(9, 0).is_err());
    }

    #[test]
    fn apply_batch_rebuilds_at_most_once() {
        let g = generators::erdos_renyi(40, 150, 3).unwrap();
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.auto_flush_threshold = 2;
        // Looping apply() over this batch would rebuild 3 times.
        let batch = [
            EdgeUpdate::Insert(0, 5),
            EdgeUpdate::Insert(1, 6),
            EdgeUpdate::Insert(2, 7),
            EdgeUpdate::Insert(3, 8),
            EdgeUpdate::Insert(4, 9),
            EdgeUpdate::Insert(5, 10),
        ];
        assert!(dyn_solver.apply_batch(&batch).unwrap());
        assert_eq!(dyn_solver.rebuilds(), 1);
        assert_eq!(dyn_solver.pending_updates(), 0);
        for (u, v) in [(0, 5), (5, 10)] {
            assert_eq!(dyn_solver.snapshot().adjacency().get(u, v), 1.0);
        }
    }

    #[test]
    fn apply_batch_dedups_opposing_pairs() {
        let g = generators::cycle(12);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver
            .apply_batch(&[
                EdgeUpdate::Insert(0, 5),
                EdgeUpdate::Remove(0, 5), // cancels the insert
                EdgeUpdate::Insert(0, 7),
            ])
            .unwrap();
        // The opposing pair collapsed to just the remove; with the insert
        // of (0,7) that leaves 2 buffered updates.
        assert_eq!(dyn_solver.pending_updates(), 2);
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency().get(0, 5), 0.0);
        assert_eq!(dyn_solver.snapshot().adjacency().get(0, 7), 1.0);
    }

    #[test]
    fn apply_batch_rejects_out_of_range_without_buffering() {
        let g = generators::cycle(4);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        let batch = [EdgeUpdate::Insert(0, 2), EdgeUpdate::Insert(0, 99)];
        assert!(dyn_solver.apply_batch(&batch).is_err());
        assert_eq!(dyn_solver.pending_updates(), 0, "partial buffering");
    }

    #[test]
    fn dedup_opposing_keeps_per_edge_order() {
        let ups = [
            EdgeUpdate::Remove(1, 2),
            EdgeUpdate::Insert(1, 2), // survives: re-adds after removal
            EdgeUpdate::Insert(3, 4),
            EdgeUpdate::Remove(3, 4), // cancels the insert above
            EdgeUpdate::Remove(5, 6),
            EdgeUpdate::Remove(5, 6), // redundant duplicate remove
        ];
        let kept = dedup_opposing(&ups);
        assert_eq!(
            kept,
            vec![
                EdgeUpdate::Remove(1, 2),
                EdgeUpdate::Insert(1, 2),
                EdgeUpdate::Remove(3, 4),
                EdgeUpdate::Remove(5, 6),
            ]
        );
    }

    #[test]
    fn removing_nonexistent_edge_is_noop() {
        let g = generators::cycle(8);
        let mut dyn_solver = DynamicBePi::new(g.clone(), BePiConfig::default()).unwrap();
        let before = dyn_solver.query(0).unwrap();
        dyn_solver.remove_edge(3, 7).unwrap(); // no such edge
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency(), g.adjacency());
        let after = dyn_solver.query(0).unwrap();
        assert_eq!(before.scores, after.scores);
    }

    #[test]
    fn insert_turning_deadend_into_non_deadend_roundtrips() {
        // Node 4 is a deadend: path 0→1→2→3→4 with no out-edge from 4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.deadend_count(), 1);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.insert_edge(4, 0).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().deadend_count(), 0);
        let got = dyn_solver.query(0).unwrap();
        let want = reference(dyn_solver.snapshot(), 0);
        for (a, b) in got.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn structural_flush_is_bit_identical_to_from_scratch_preprocess() {
        let g = generators::erdos_renyi(60, 240, 17).unwrap();
        // Removing every out-edge of some node flips it to a deadend — a
        // structural batch, so flush must run the full pipeline, which is
        // bit-identical to a from-scratch preprocess.
        let u = (0..g.n()).find(|&u| g.out_degree(u) > 0).unwrap();
        let mut batch: Vec<EdgeUpdate> = g
            .out_neighbors(u)
            .map(|v| EdgeUpdate::Remove(u, v))
            .collect();
        batch.push(EdgeUpdate::Insert(10, 20));
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.apply_batch(&batch).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.last_rebuild_kind(), RebuildKind::Full);
        assert_eq!(dyn_solver.full_rebuilds(), 1);
        let scratch = BePi::preprocess(dyn_solver.snapshot(), &BePiConfig::default()).unwrap();
        for seed in [0usize, 10, 59] {
            assert_eq!(
                dyn_solver.query(seed).unwrap().scores,
                scratch.query(seed).unwrap().scores,
                "seed {seed} must match a from-scratch preprocess bit-for-bit"
            );
        }
    }

    #[test]
    fn numeric_flush_is_bit_identical_to_plan_frozen_preprocess() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 7).unwrap();
        let mut dyn_solver = DynamicBePi::new(g.clone(), BePiConfig::default()).unwrap();
        let plan = dyn_solver.solver().symbolic_plan();
        // Removing one edge of a multi-out-edge source can never flip a
        // deadend or cross H11 blocks: guaranteed numeric-only.
        let u = (0..g.n()).find(|&u| g.out_degree(u) >= 2).unwrap();
        let v = g.out_neighbors(u).next().unwrap();
        dyn_solver.remove_edge(u, v).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.last_rebuild_kind(), RebuildKind::Numeric);
        assert_eq!(dyn_solver.numeric_rebuilds(), 1);
        assert_eq!(dyn_solver.full_rebuilds(), 0);
        let frozen =
            BePi::preprocess_with_plan(dyn_solver.snapshot(), &BePiConfig::default(), &plan)
                .unwrap();
        for seed in [0usize, 33, 200] {
            assert_eq!(
                dyn_solver.query(seed).unwrap().scores,
                frozen.query(seed).unwrap().scores,
                "seed {seed} must match a plan-frozen preprocess bit-for-bit"
            );
        }
        // And agree with a genuine from-scratch preprocess numerically.
        let scratch = BePi::preprocess(dyn_solver.snapshot(), &BePiConfig::default()).unwrap();
        for seed in [0usize, 33, 200] {
            let a = dyn_solver.query(seed).unwrap().scores;
            let b = scratch.query(seed).unwrap().scores;
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-6, "seed {seed}");
            }
        }
    }

    #[test]
    fn numeric_flush_meets_residual_bound_vs_scratch() {
        // ISSUE acceptance bar: with a tight inner tolerance the numeric
        // path's answers satisfy ‖H r − c q‖∞ ≤ 1e-10 on the *updated*
        // graph — the same bound a from-scratch preprocess meets.
        let cfg = BePiConfig {
            tol: 1e-12,
            ..BePiConfig::default()
        };
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 7).unwrap();
        let mut dyn_solver = DynamicBePi::new(g.clone(), cfg).unwrap();
        let u = (0..g.n()).find(|&u| g.out_degree(u) >= 2).unwrap();
        let v = g.out_neighbors(u).next().unwrap();
        dyn_solver.remove_edge(u, v).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.last_rebuild_kind(), RebuildKind::Numeric);
        let h = crate::rwr::build_h(dyn_solver.snapshot(), cfg.c).unwrap();
        for seed in [0usize, 99] {
            let r = dyn_solver.query(seed).unwrap().scores;
            let hr = h.mul_vec(&r).unwrap();
            let mut q = vec![0.0; r.len()];
            q[seed] = cfg.c;
            let resid = hr
                .iter()
                .zip(&q)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(resid <= 1e-10, "seed {seed}: residual {resid}");
        }
    }

    #[test]
    fn repeated_insert_remove_insert_across_generations() {
        // Satellite: the same edge cycled through insert/remove/insert
        // over several rebuild generations — weights must stay fresh and
        // every generation must match the reference on the then-current
        // graph, whichever rebuild path served it.
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 5).unwrap();
        let u = (0..g.n()).find(|&u| g.out_degree(u) >= 2).unwrap();
        let v = g.out_neighbors(u).next().unwrap();
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();

        // Gen 1: remove + re-insert in one batch → dedup leaves
        // Remove, Insert; the edge survives at weight 1.0.
        dyn_solver
            .apply_batch(&[EdgeUpdate::Remove(u, v), EdgeUpdate::Insert(u, v)])
            .unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency().get(u, v), 1.0);

        // Gen 2: remove it for real (numeric: u keeps other out-edges).
        dyn_solver.remove_edge(u, v).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency().get(u, v), 0.0);
        assert_eq!(dyn_solver.last_rebuild_kind(), RebuildKind::Numeric);

        // Gen 3: re-insert it (re-adding an original edge is numeric-safe).
        dyn_solver.insert_edge(u, v).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency().get(u, v), 1.0);
        assert_eq!(dyn_solver.rebuilds(), 3);

        let want = reference(dyn_solver.snapshot(), u);
        let got = dyn_solver.query(u).unwrap();
        for (a, b) in got.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn random_small_batches_stay_correct_over_generations() {
        // Property test over a deterministic LCG stream of small batches:
        // inserts (sometimes structural), removals of existing edges,
        // opposing insert/remove pairs, and edges into deadend targets.
        // Every generation must (a) be bit-identical to a plan-frozen
        // preprocess when the numeric path fired and (b) match the power
        // reference on the updated graph.
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 13).unwrap();
        let g = generators::inject_deadends(&g, 0.2, 3).unwrap();
        let n = g.n();
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let deadend = (0..n)
            .find(|&u| dyn_solver.snapshot().out_degree(u) == 0)
            .unwrap();
        let mut numeric_seen = false;
        for generation in 0..6 {
            let mut batch = Vec::new();
            for _ in 0..3 {
                match next() % 4 {
                    0 => batch.push(EdgeUpdate::Insert(next() % n, next() % n)),
                    1 => {
                        // Remove an existing edge of a random source.
                        let u = next() % n;
                        if let Some(v) = dyn_solver.snapshot().out_neighbors(u).next() {
                            batch.push(EdgeUpdate::Remove(u, v));
                        }
                    }
                    2 => {
                        // Opposing pair: cancels to nothing.
                        let (u, v) = (next() % n, next() % n);
                        batch.push(EdgeUpdate::Insert(u, v));
                        batch.push(EdgeUpdate::Remove(u, v));
                    }
                    _ => {
                        // Deadend-only target: the deadend gains no
                        // out-edge, so its rows stay identity rows.
                        batch.push(EdgeUpdate::Insert(next() % n, deadend));
                    }
                }
            }
            let plan = dyn_solver.solver().symbolic_plan();
            dyn_solver.apply_batch(&batch).unwrap();
            dyn_solver.flush().unwrap();
            if dyn_solver.last_rebuild_kind() == RebuildKind::Numeric {
                numeric_seen = true;
                let frozen = BePi::preprocess_with_plan(
                    dyn_solver.snapshot(),
                    &BePiConfig::default(),
                    &plan,
                )
                .unwrap();
                assert_eq!(
                    dyn_solver.query(generation).unwrap().scores,
                    frozen.query(generation).unwrap().scores,
                    "generation {generation}"
                );
            }
            let seed = next() % n;
            let want = reference(dyn_solver.snapshot(), seed);
            let got = dyn_solver.query(seed).unwrap();
            for (i, (a, b)) in got.scores.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "generation {generation} seed {seed} node {i}: {a} vs {b}"
                );
            }
        }
        assert!(numeric_seen, "the LCG stream should hit the numeric path");
    }

    #[test]
    fn inserting_existing_edge_is_idempotent() {
        // Re-inserting a present edge must keep weight 1.0, not sum to
        // 2.0 — otherwise row-normalized transition probabilities shift.
        let g = generators::cycle(6); // (0,1) already exists
        let mut dyn_solver = DynamicBePi::new(g.clone(), BePiConfig::default()).unwrap();
        let before = dyn_solver.query(0).unwrap();
        dyn_solver.insert_edge(0, 1).unwrap();
        dyn_solver.insert_edge(0, 1).unwrap(); // twice, same batch
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.snapshot().adjacency(), g.adjacency());
        assert_eq!(dyn_solver.query(0).unwrap().scores, before.scores);
    }

    #[test]
    fn replaying_applied_batch_is_idempotent() {
        // The WAL-recovery invariant: a crash between checkpoint rename
        // and compaction replays the batch over a state that already
        // contains it, which must be a no-op.
        let g = generators::erdos_renyi(50, 200, 11).unwrap();
        let batch = [
            EdgeUpdate::Insert(0, 7),
            EdgeUpdate::Remove(1, 2),
            EdgeUpdate::Insert(3, 9),
        ];
        let once = apply_updates(&g, &batch).unwrap();
        let twice = apply_updates(&once, &batch).unwrap();
        assert_eq!(once.adjacency(), twice.adjacency());
    }

    #[test]
    fn flush_on_empty_buffer_is_noop() {
        let g = generators::cycle(4);
        let mut dyn_solver = DynamicBePi::new(g, BePiConfig::default()).unwrap();
        dyn_solver.flush().unwrap();
        assert_eq!(dyn_solver.rebuilds(), 0);
    }
}
