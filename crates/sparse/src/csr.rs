//! Compressed sparse row format — the computational workhorse.
//!
//! Invariants maintained by every constructor:
//! * `indptr` has length `nrows + 1`, is non-decreasing, starts at 0 and
//!   ends at `nnz`.
//! * Within each row, column indices are strictly increasing (sorted, no
//!   duplicates).
//!
//! These invariants let SpMV, SpGEMM, triangular solves, and the block
//! slicing used by BePI's partitioning run without per-entry checks.

use crate::coo::check_dims;
use crate::error::SparseError;
use crate::mem::MemBytes;
use crate::storage::Storage;
use crate::{Coo, Dense, Result};

/// Minimum nnz before [`Csr::mul_vec_into`] fans out to threads: below
/// this the spawn/join cost of scoped threads exceeds the multiply.
const PAR_SPMV_MIN_NNZ: usize = 16_384;

/// A sparse matrix in compressed sparse row format.
///
/// ```
/// use bepi_sparse::Coo;
///
/// // [1 0 2]
/// // [0 3 0]
/// let mut coo = Coo::new(2, 3).unwrap();
/// coo.push(0, 0, 1.0).unwrap();
/// coo.push(0, 2, 2.0).unwrap();
/// coo.push(1, 1, 3.0).unwrap();
/// let a = coo.to_csr();
///
/// assert_eq!(a.shape(), (2, 3));
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    indptr: Storage<usize>,
    indices: Storage<u32>,
    values: Storage<f64>,
}

impl Csr {
    /// Creates an all-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        check_dims(nrows, ncols).expect("dimension exceeds u32 index space");
        Self {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1].into(),
            indices: Vec::new().into(),
            values: Vec::new().into(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        check_dims(n, n).expect("dimension exceeds u32 index space");
        Self {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect::<Vec<_>>().into(),
            indices: (0..n as u32).collect::<Vec<_>>().into(),
            values: vec![1.0; n].into(),
        }
    }

    /// Builds a CSR matrix directly from raw parts, validating all
    /// invariants (indptr monotonicity, sorted unique column indices).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        check_dims(nrows, ncols)?;
        if indptr.len() != nrows + 1 {
            return Err(SparseError::VectorLength {
                expected: nrows + 1,
                actual: indptr.len(),
            });
        }
        if indices.len() != values.len() {
            return Err(SparseError::VectorLength {
                expected: indices.len(),
                actual: values.len(),
            });
        }
        if indptr[0] != 0 || *indptr.last().unwrap() != indices.len() {
            return Err(SparseError::Parse(format!(
                "indptr must start at 0 and end at nnz={}",
                indices.len()
            )));
        }
        for row in 0..nrows {
            let (start, end) = (indptr[row], indptr[row + 1]);
            if start > end {
                return Err(SparseError::Parse(format!("indptr decreases at row {row}")));
            }
            if end > indices.len() {
                return Err(SparseError::Parse(format!(
                    "indptr entry {end} at row {row} exceeds nnz {}",
                    indices.len()
                )));
            }
            let mut prev: Option<u32> = None;
            for &col in &indices[start..end] {
                if col as usize >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: (row, col as usize),
                        shape: (nrows, ncols),
                    });
                }
                if let Some(p) = prev {
                    if col <= p {
                        return Err(SparseError::Parse(format!(
                            "row {row} has unsorted or duplicate column {col}"
                        )));
                    }
                }
                prev = Some(col);
            }
        }
        Ok(Self {
            nrows,
            ncols,
            indptr: indptr.into(),
            indices: indices.into(),
            values: values.into(),
        })
    }

    /// Builds a CSR matrix from [`Storage`]-backed parts — the zero-copy
    /// constructor for matrices served straight out of a memory-mapped
    /// v6 index — with `O(1)` structural checks only (lengths, first and
    /// last row pointer).
    ///
    /// The full `O(nnz)` invariant scan of [`Csr::from_parts`] is
    /// deliberately skipped: integrity of mapped sections is established
    /// by the container's per-section CRC-32, and re-walking every entry
    /// at open time would make daemon startup linear in index size
    /// again. Interior corruption that slips past the caller's CRC
    /// policy surfaces as a clean panic or wrong scores on use — never
    /// undefined behavior (this crate forbids `unsafe`). Debug builds
    /// still verify everything.
    pub fn from_parts_storage_trusted(
        nrows: usize,
        ncols: usize,
        indptr: Storage<usize>,
        indices: Storage<u32>,
        values: Storage<f64>,
    ) -> Result<Self> {
        check_dims(nrows, ncols)?;
        if indptr.len() != nrows + 1 {
            return Err(SparseError::VectorLength {
                expected: nrows + 1,
                actual: indptr.len(),
            });
        }
        if indices.len() != values.len() {
            return Err(SparseError::VectorLength {
                expected: indices.len(),
                actual: values.len(),
            });
        }
        if indptr[0] != 0 || indptr[nrows] != indices.len() {
            return Err(SparseError::Parse(format!(
                "indptr must start at 0 and end at nnz={}",
                indices.len()
            )));
        }
        let m = Self {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        };
        debug_assert!(m.check_invariants().is_ok(), "CSR invariants violated");
        Ok(m)
    }

    /// True when any of the backing arrays is served from a mapped index
    /// file rather than the heap.
    pub fn is_mapped(&self) -> bool {
        self.indptr.is_mapped() || self.indices.is_mapped() || self.values.is_mapped()
    }

    /// Bytes of heap memory held by the three arrays.
    pub fn heap_bytes(&self) -> usize {
        self.indptr.heap_bytes() + self.indices.heap_bytes() + self.values.heap_bytes()
    }

    /// Bytes served zero-copy from a mapped index file.
    pub fn mapped_bytes(&self) -> usize {
        self.indptr.mapped_bytes() + self.indices.mapped_bytes() + self.values.mapped_bytes()
    }

    /// Builds a CSR matrix from raw parts without validation.
    ///
    /// Callers must uphold the format invariants; intended for kernels that
    /// construct valid output by design. Debug builds still verify.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        let m = Self {
            nrows,
            ncols,
            indptr: indptr.into(),
            indices: indices.into(),
            values: values.into(),
        };
        debug_assert!(m.check_invariants().is_ok(), "CSR invariants violated");
        m
    }

    /// Verifies the format invariants; used by debug assertions and tests.
    pub fn check_invariants(&self) -> Result<()> {
        let clone = Self::from_parts(
            self.nrows,
            self.ncols,
            self.indptr.to_vec(),
            self.indices.to_vec(),
            self.values.to_vec(),
        )?;
        debug_assert_eq!(&clone, self);
        Ok(())
    }

    /// Compresses a COO matrix, summing duplicates and dropping entries
    /// whose summed value is exactly zero.
    pub fn from_coo(coo: &Coo) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // Counting sort by row.
        let mut counts = vec![0usize; nrows + 1];
        for (r, _, _) in coo.iter() {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let nnz = coo.nnz();
        let mut col_buf = vec![0u32; nnz];
        let mut val_buf = vec![0.0f64; nnz];
        {
            let mut next = counts.clone();
            for (r, c, v) in coo.iter() {
                let slot = next[r];
                col_buf[slot] = c as u32;
                val_buf[slot] = v;
                next[r] += 1;
            }
        }
        // Sort each row by column and merge duplicates.
        let mut indptr = vec![0usize; nrows + 1];
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut order: Vec<u32> = Vec::new();
        for row in 0..nrows {
            let (start, end) = (counts[row], counts[row + 1]);
            let cols = &col_buf[start..end];
            let vals = &val_buf[start..end];
            order.clear();
            order.extend(0..(end - start) as u32);
            order.sort_unstable_by_key(|&i| cols[i as usize]);
            let mut i = 0;
            while i < order.len() {
                let col = cols[order[i] as usize];
                let mut sum = 0.0;
                while i < order.len() && cols[order[i] as usize] == col {
                    sum += vals[order[i] as usize];
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    values.push(sum);
                }
            }
            indptr[row + 1] = indices.len();
        }
        Self::from_parts_unchecked(nrows, ncols, indptr, indices, values)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (structure stays fixed). For a
    /// mapped matrix this copies the value array to the heap first
    /// (copy-on-write); the read-only serving paths never call it.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.values.to_mut()
    }

    /// The column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Iterates over the `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row(i);
        cols.iter().zip(vals).map(|(&c, &v)| (c as usize, v))
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row_iter(r).map(move |(c, v)| (r, c, v)))
    }

    /// Value at `(row, col)` (binary search within the row), 0.0 if absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&(col as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Dense `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// `y = A x` into a caller-provided buffer (overwrites `y`).
    ///
    /// Runs on [`bepi_par::get_threads`] threads when the matrix is large
    /// enough to amortize the spawns; each thread owns a contiguous range
    /// of rows balanced by nnz (via the `indptr` prefix sums), so the
    /// result is byte-identical to the serial loop at any thread count.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        let threads = if self.nnz() < PAR_SPMV_MIN_NNZ {
            1
        } else {
            bepi_par::get_threads()
        };
        self.mul_vec_into_threads(x, y, threads)
    }

    /// [`Csr::mul_vec_into`] with an explicit thread count, bypassing both
    /// the global knob and the size threshold (tests and benchmarks pin
    /// thread counts through this; `threads <= 1` is the serial loop).
    pub fn mul_vec_into_threads(&self, x: &[f64], y: &mut [f64], threads: usize) -> Result<()> {
        if x.len() != self.ncols {
            return Err(SparseError::VectorLength {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::VectorLength {
                expected: self.nrows,
                actual: y.len(),
            });
        }
        if threads <= 1 || self.nrows <= 1 {
            self.spmv_rows(x, 0, y);
            return Ok(());
        }
        let ranges = bepi_par::balanced_ranges(&self.indptr, threads);
        bepi_par::par_chunks_mut(y, &ranges, |_, first_row, chunk| {
            self.spmv_rows(x, first_row, chunk)
        });
        Ok(())
    }

    /// The serial SpMV row body over rows `first_row..first_row + y.len()`.
    /// Both the serial and every parallel path go through this, which is
    /// what makes the parallel result bit-identical by construction.
    #[inline]
    fn spmv_rows(&self, x: &[f64], first_row: usize, y: &mut [f64]) {
        for (offset, yi) in y.iter_mut().enumerate() {
            let row = first_row + offset;
            let (s, e) = (self.indptr[row], self.indptr[row + 1]);
            let mut acc = 0.0;
            for k in s..e {
                acc += self.values[k] * x[self.indices[k] as usize];
            }
            *yi = acc;
        }
    }

    /// Dense `y = A^T x` without materializing the transpose.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.ncols];
        self.mul_vec_transposed_into(x, &mut y)?;
        Ok(y)
    }

    /// `y = A^T x` into a caller-provided buffer (overwrites `y`).
    pub fn mul_vec_transposed_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.nrows {
            return Err(SparseError::VectorLength {
                expected: self.nrows,
                actual: x.len(),
            });
        }
        if y.len() != self.ncols {
            return Err(SparseError::VectorLength {
                expected: self.ncols,
                actual: y.len(),
            });
        }
        y.fill(0.0);
        for row in 0..self.nrows {
            let xr = x[row];
            if xr == 0.0 {
                continue;
            }
            let (s, e) = (self.indptr[row], self.indptr[row + 1]);
            for k in s..e {
                y[self.indices[k] as usize] += self.values[k] * xr;
            }
        }
        Ok(())
    }

    /// Returns the transpose as a new CSR matrix (equivalently: interprets
    /// this matrix as CSC and re-compresses by the other dimension).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in self.indices.iter() {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = counts.clone();
        for row in 0..self.nrows {
            let (s, e) = (self.indptr[row], self.indptr[row + 1]);
            for k in s..e {
                let col = self.indices[k] as usize;
                let slot = next[col];
                indices[slot] = row as u32;
                values[slot] = self.values[k];
                next[col] += 1;
            }
        }
        // Row-major traversal writes each output row in increasing source-row
        // order, so output columns are already sorted.
        Csr::from_parts_unchecked(self.ncols, self.nrows, counts, indices, values)
    }

    /// Row-normalizes in place: each non-empty row is divided by its sum of
    /// values, making it row-stochastic. Rows that sum to zero (deadends)
    /// are left untouched, exactly as the paper's `Ã` handles deadends.
    ///
    /// Returns the number of rows that could not be normalized.
    pub fn row_normalize(&mut self) -> usize {
        let mut skipped = 0;
        let values = self.values.to_mut();
        for row in 0..self.nrows {
            let (s, e) = (self.indptr[row], self.indptr[row + 1]);
            let sum: f64 = values[s..e].iter().sum();
            if sum != 0.0 {
                for v in &mut values[s..e] {
                    *v /= sum;
                }
            } else if e > s {
                skipped += 1;
            }
        }
        skipped
    }

    /// Multiplies every stored value by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.values.to_mut() {
            *v *= alpha;
        }
    }

    /// Extracts the sub-matrix `self[row_range, col_range]` with indices
    /// shifted to start at zero. Ranges must lie inside the shape.
    ///
    /// After BePI's node reordering every block (`H11`, `H12`, ...,
    /// the per-component diagonal blocks of `H11`) is a contiguous slice,
    /// so this is the partitioning primitive of the whole system.
    pub fn slice_block(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> Result<Csr> {
        if row_range.end > self.nrows || row_range.start > row_range.end {
            return Err(SparseError::IndexOutOfBounds {
                index: (row_range.end, 0),
                shape: (self.nrows, self.ncols),
            });
        }
        if col_range.end > self.ncols || col_range.start > col_range.end {
            return Err(SparseError::IndexOutOfBounds {
                index: (0, col_range.end),
                shape: (self.nrows, self.ncols),
            });
        }
        let nrows = row_range.end - row_range.start;
        let ncols = col_range.end - col_range.start;
        let (clo, chi) = (col_range.start as u32, col_range.end as u32);
        let mut indptr = Vec::with_capacity(nrows + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for row in row_range {
            let (cols, vals) = self.row(row);
            // Columns are sorted: binary search the window once per row.
            let lo = cols.partition_point(|&c| c < clo);
            let hi = cols.partition_point(|&c| c < chi);
            for k in lo..hi {
                indices.push(cols[k] - clo);
                values.push(vals[k]);
            }
            indptr.push(indices.len());
        }
        Ok(Csr::from_parts_unchecked(
            nrows, ncols, indptr, indices, values,
        ))
    }

    /// Converts to a dense matrix (small problems / tests only).
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Converts to COO (triplets in row-major order).
    pub fn to_coo(&self) -> Coo {
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        for row in 0..self.nrows {
            let (s, e) = (self.indptr[row], self.indptr[row + 1]);
            rows.extend(std::iter::repeat(row as u32).take(e - s));
            cols.extend_from_slice(&self.indices[s..e]);
        }
        Coo::from_triplets(self.nrows, self.ncols, rows, cols, self.values.to_vec())
            .expect("CSR is always a valid COO source")
    }

    /// The main diagonal as a dense vector (zero where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// True if the matrix is strictly diagonally dominant by columns:
    /// `|a_jj| > Σ_{i≠j} |a_ij|` for every column `j`.
    ///
    /// `H = I − (1−c)Ã^T` satisfies this for `0 < c < 1`, which is what
    /// makes BePI's no-pivot LU and ILU(0) factorizations safe.
    pub fn is_column_diagonally_dominant(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let mut off = vec![0.0f64; self.ncols];
        let mut diag = vec![0.0f64; self.ncols];
        for (r, c, v) in self.iter() {
            if r == c {
                diag[c] = v.abs();
            } else {
                off[c] += v.abs();
            }
        }
        diag.iter().zip(&off).all(|(d, o)| d > o)
    }
}

impl MemBytes for Csr {
    fn mem_bytes(&self) -> usize {
        self.indptr.mem_bytes() + self.indices.mem_bytes() + self.values.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        let mut coo = Coo::new(3, 3).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 2, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 1, 5.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let mut coo = Coo::new(2, 3).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        coo.push(0, 0, 5.0).unwrap();
        coo.push(0, 2, 2.0).unwrap(); // duplicate of (0,2)
        let m = coo.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 2), 3.0);
        let (cols, _) = m.row(0);
        assert_eq!(cols, &[0, 2]);
    }

    #[test]
    fn duplicate_cancellation_drops_entry() {
        let mut coo = Coo::new(1, 1).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, -1.0).unwrap();
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn identity_and_zeros() {
        let i = Csr::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let z = Csr::zeros(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.shape(), (2, 5));
    }

    #[test]
    fn from_parts_rejects_unsorted() {
        let r = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn from_parts_rejects_bad_indptr() {
        let r = Csr::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(r.is_err());
        let r = Csr::from_parts(2, 2, vec![1, 1, 1], vec![0], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn from_parts_rejects_overflowing_middle_indptr() {
        // Regression: a middle indptr entry larger than nnz used to panic
        // on slicing instead of returning a parse error.
        let r = Csr::from_parts(2, 2, vec![0, 999, 1], vec![0], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 9.0, 14.0]);
    }

    #[test]
    fn mul_vec_transposed_matches_dense() {
        let m = sample();
        let y = m.mul_vec_transposed(&[1.0, 2.0, 3.0]).unwrap();
        // A^T x: col sums weighted by x
        assert_eq!(y, vec![1.0 + 12.0, 15.0, 2.0 + 6.0]);
    }

    #[test]
    fn mul_vec_rejects_bad_lengths() {
        let m = sample();
        assert!(m.mul_vec(&[1.0, 2.0]).is_err());
        assert!(m.mul_vec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.transpose(), m);
        t.check_invariants().unwrap();
    }

    #[test]
    fn row_normalize_makes_rows_stochastic() {
        let mut m = sample();
        let skipped = m.row_normalize();
        assert_eq!(skipped, 0);
        for r in 0..3 {
            let sum: f64 = m.row(r).1.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn row_normalize_leaves_empty_rows() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        let mut m = coo.to_csr();
        let skipped = m.row_normalize();
        assert_eq!(skipped, 0); // empty row isn't "skipped", it has no entries
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn slice_block_extracts_and_shifts() {
        let m = sample();
        let b = m.slice_block(1..3, 1..3).unwrap();
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.get(0, 1), 3.0); // was (1,2)
        assert_eq!(b.get(1, 0), 5.0); // was (2,1)
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn slice_block_full_is_identity_op() {
        let m = sample();
        let b = m.slice_block(0..3, 0..3).unwrap();
        assert_eq!(b, m);
    }

    #[test]
    fn slice_block_rejects_out_of_range() {
        let m = sample();
        assert!(m.slice_block(0..4, 0..3).is_err());
        assert!(m.slice_block(0..3, 2..5).is_err());
    }

    #[test]
    fn get_and_diagonal() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.diagonal(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn diagonal_dominance_detection() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 3.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        assert!(coo.to_csr().is_column_diagonally_dominant());

        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, -2.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        assert!(!coo.to_csr().is_column_diagonally_dominant());
    }

    #[test]
    fn to_dense_and_back() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 1)], 5.0);
        assert_eq!(d[(1, 0)], 0.0);
        let c = m.to_coo().to_csr();
        assert_eq!(c, m);
    }

    #[test]
    fn scale_multiplies_values() {
        let mut m = sample();
        m.scale(2.0);
        assert_eq!(m.get(2, 1), 10.0);
    }

    #[test]
    fn mem_bytes_exact() {
        let m = sample(); // 5 nnz, 4 indptr entries
        assert_eq!(m.mem_bytes(), 4 * 8 + 5 * 4 + 5 * 8);
    }

    #[test]
    fn empty_rows_iterate_fine() {
        let m = Csr::zeros(3, 3);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.mul_vec(&[1.0; 3]).unwrap(), vec![0.0; 3]);
    }
}
