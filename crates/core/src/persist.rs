//! Saving and loading preprocessed BePI instances.
//!
//! The economics of a preprocessing method (Section 2.3: "preprocessed
//! matrices need to be computed just once, and then can be reused") only
//! materialize if the preprocessed data survives the process. This module
//! serializes a [`BePi`] instance to a compact little-endian binary format
//! and restores it bit-for-bit.
//!
//! Format (v2): magic `BEPI`, a format version, the config scalars, then
//! each matrix as `(nrows, ncols, indptr, indices, values)`, and finally a
//! CRC-32 (IEEE, hand-rolled — no external crates) of every payload byte
//! between the version field and the trailer. Version 1 files (no
//! checksum trailer) are still readable.
//!
//! Format v3 ([`save_with_graph`]) appends the original adjacency matrix
//! after the preprocessed parts, inside the same CRC envelope. A v3 index
//! is *live-capable*: a daemon can re-preprocess after edge updates
//! because the graph itself survived the round trip. [`load`] reads all
//! three versions (discarding the graph); [`load_with_graph`] reports
//! whether one was embedded.
//!
//! Format v6 ([`save_v6`]) is the *memory-mappable* container from
//! `bepi-map`: a section table with per-section CRC-32s and 64-byte
//! aligned little-endian payloads, so a daemon can [`load_mapped_file`]
//! the index and serve queries zero-copy straight out of the kernel page
//! cache — open time is independent of index size. The same file also
//! loads on the heap ([`load`] / [`load_with_graph`]), with every
//! section checksum verified, and both paths produce bit-identical
//! query results.
//!
//! Array lengths in the stream are untrusted: readers never preallocate
//! more than a fixed bound, so a corrupt length field fails with a clean
//! parse error instead of aborting on an absurd allocation.

use crate::bepi::{BePi, BePiConfig, PhaseTiming, RawParts};
use crate::rwr::RwrSolver;
use bepi_graph::Graph;
use bepi_map::{sections as sec, ContainerWriter, MapError, MappedIndex, SectionEntry};
use bepi_solver::Ilu0;
use bepi_sparse::{Csr, Permutation, Result, SparseError, Storage};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"BEPI";
const VERSION: u32 = 4;
/// Format version for indexes with the adjacency matrix embedded.
const VERSION_WITH_GRAPH: u32 = 5;
/// Format version for memory-mappable section-table indexes.
pub const VERSION_MAPPED: u32 = bepi_map::VERSION;
/// Oldest format version `load` still understands.
const MIN_VERSION: u32 = 1;
/// Newest format version `load` understands.
const MAX_VERSION: u32 = 6;

/// Upper bound on speculative preallocation for length-prefixed arrays.
/// Legitimate arrays larger than this still load — the vector grows as
/// elements are actually read — but a bogus length field from a corrupt
/// file can no longer trigger a multi-terabyte `with_capacity`.
const MAX_PREALLOC_BYTES: usize = 1 << 24;

/// Incremental CRC-32 state (IEEE 802.3). Re-exported from `bepi-map`,
/// which owns the canonical implementation; sibling crates (the
/// `bepi-live` write-ahead log) keep framing their files with the same
/// checksum convention through this path.
pub use bepi_map::Crc32;

/// Computes the CRC-32 of a byte slice in one call.
#[cfg(test)]
pub(crate) use bepi_map::crc32;

/// A writer adapter that checksums everything flowing through it.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that checksums everything flowing through it.
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Writes a preprocessed instance to a stream (format v4: payload —
/// including the per-phase preprocessing time breakdown — followed by a
/// CRC-32 trailer).
pub fn save<W: Write>(bepi: &BePi, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    let mut cw = CrcWriter::new(w);
    bepi.write_parts(&mut cw, true)?;
    let checksum = cw.crc.finalize();
    let mut w = cw.inner;
    write_u32(&mut w, checksum)?;
    w.flush()?;
    Ok(())
}

/// Writes a *live-capable* instance (format v5): the preprocessed parts
/// followed by the original adjacency matrix, all inside the CRC-32
/// envelope. An index saved this way can be re-preprocessed after edge
/// updates (see `bepi-live`) because the graph itself is durable.
pub fn save_with_graph<W: Write>(bepi: &BePi, graph: &Graph, writer: W) -> Result<()> {
    if graph.n() != bepi.node_count() {
        return Err(SparseError::ShapeMismatch {
            left: (graph.n(), graph.n()),
            right: (bepi.node_count(), bepi.node_count()),
            op: "persist::save_with_graph (graph vs index node count)",
        });
    }
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION_WITH_GRAPH)?;
    let mut cw = CrcWriter::new(w);
    bepi.write_parts(&mut cw, true)?;
    write_csr(&mut cw, graph.adjacency())?;
    let checksum = cw.crc.finalize();
    let mut w = cw.inner;
    write_u32(&mut w, checksum)?;
    w.flush()?;
    Ok(())
}

// --- format v6: memory-mappable section container ---

/// Converts a `bepi-map` container error into this crate's error type,
/// preserving the section-naming message.
fn from_map_err(e: MapError) -> SparseError {
    match e {
        MapError::Io(msg) => SparseError::Io(msg),
        other => SparseError::Parse(format!("v6 index: {other}")),
    }
}

fn write_u32s_section<W: Write>(cw: &mut ContainerWriter<W>, id: u32, s: &[u32]) -> Result<()> {
    cw.begin_section(id)?;
    for &v in s {
        cw.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn write_u64s_section<W: Write>(cw: &mut ContainerWriter<W>, id: u32, s: &[usize]) -> Result<()> {
    cw.begin_section(id)?;
    for &v in s {
        cw.write_all(&(v as u64).to_le_bytes())?;
    }
    Ok(())
}

fn write_f64s_section<W: Write>(cw: &mut ContainerWriter<W>, id: u32, s: &[f64]) -> Result<()> {
    cw.begin_section(id)?;
    for &v in s {
        cw.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes a CSR's three arrays as three sections. Dimensions are not
/// stored: every persisted matrix's shape is derivable from the META
/// partition sizes `(n1, n2, n3)`.
fn write_csr_sections<W: Write>(
    cw: &mut ContainerWriter<W>,
    ids: (u32, u32, u32),
    m: &Csr,
) -> Result<()> {
    write_u64s_section(cw, ids.0, m.indptr())?;
    write_u32s_section(cw, ids.1, m.indices())?;
    write_f64s_section(cw, ids.2, m.values())
}

/// Writes a *memory-mappable* index (format v6): the `bepi-map` section
/// container with 64-byte-aligned little-endian payloads and per-section
/// CRC-32s. Unlike v4/v5 this format:
///
/// * can be served zero-copy via [`load_mapped_file`] (open time does
///   not depend on index size, pages are shared across processes);
/// * persists the ILU(0) factors, so loads never re-run the
///   factorization;
/// * embeds the adjacency graph only when `graph` is `Some` (the
///   live-update daemon needs it; query-only serving does not).
///
/// Streams through any `W: Write` in one pass (the section table lands
/// at the end of the file, so no `Seek` is needed).
pub fn save_v6<W: Write>(bepi: &BePi, graph: Option<&Graph>, writer: W) -> Result<()> {
    if let Some(g) = graph {
        if g.n() != bepi.node_count() {
            return Err(SparseError::ShapeMismatch {
                left: (g.n(), g.n()),
                right: (bepi.node_count(), bepi.node_count()),
                op: "persist::save_v6 (graph vs index node count)",
            });
        }
    }
    let mut cw = ContainerWriter::new(BufWriter::new(writer))?;
    let stats = bepi.stats();

    // META: config + partition sizes + run statistics, in the v4 stream
    // encoding. Small, so the mapped loader verifies its CRC eagerly.
    cw.begin_section(sec::META)?;
    write_config(&mut cw, bepi.config())?;
    write_u64(&mut cw, stats.n1 as u64)?;
    write_u64(&mut cw, stats.n2 as u64)?;
    write_u64(&mut cw, stats.n3 as u64)?;
    write_u64(&mut cw, stats.slashburn_iterations as u64)?;
    write_f64(&mut cw, stats.elapsed.as_secs_f64())?;
    write_u64(&mut cw, stats.phases.len() as u64)?;
    for phase in &stats.phases {
        let name = phase.name.as_bytes();
        write_u64(&mut cw, name.len() as u64)?;
        cw.write_all(name)?;
        write_f64(&mut cw, phase.seconds)?;
    }

    // Both permutation directions, so the mapped load stays O(1) instead
    // of re-deriving the inverse.
    write_u32s_section(
        &mut cw,
        sec::PERM_NEW_OF_OLD,
        bepi.permutation().new_of_old(),
    )?;
    write_u32s_section(
        &mut cw,
        sec::PERM_OLD_OF_NEW,
        bepi.permutation().old_of_new(),
    )?;

    let lu = bepi.h11_factors();
    write_u64s_section(&mut cw, sec::BLOCK_SIZES, &lu.block_sizes)?;
    write_csr_sections(
        &mut cw,
        (sec::L_INV_INDPTR, sec::L_INV_INDICES, sec::L_INV_VALUES),
        &lu.l_inv,
    )?;
    write_csr_sections(
        &mut cw,
        (sec::U_INV_INDPTR, sec::U_INV_INDICES, sec::U_INV_VALUES),
        &lu.u_inv,
    )?;
    write_csr_sections(
        &mut cw,
        (sec::S_INDPTR, sec::S_INDICES, sec::S_VALUES),
        bepi.schur(),
    )?;
    let (h12, h21, h31, h32) = bepi.coupling_blocks();
    write_csr_sections(
        &mut cw,
        (sec::H12_INDPTR, sec::H12_INDICES, sec::H12_VALUES),
        h12,
    )?;
    write_csr_sections(
        &mut cw,
        (sec::H21_INDPTR, sec::H21_INDICES, sec::H21_VALUES),
        h21,
    )?;
    write_csr_sections(
        &mut cw,
        (sec::H31_INDPTR, sec::H31_INDICES, sec::H31_VALUES),
        h31,
    )?;
    write_csr_sections(
        &mut cw,
        (sec::H32_INDPTR, sec::H32_INDICES, sec::H32_VALUES),
        h32,
    )?;

    // ILU factors, when the instance built them: persisting the factors
    // (≈ |S| extra bytes) is what makes v6 open time independent of
    // index size — a v4/v5 load re-runs the whole elimination.
    if let Some(ilu) = bepi.ilu_parts() {
        write_csr_sections(
            &mut cw,
            (sec::ILU_INDPTR, sec::ILU_INDICES, sec::ILU_VALUES),
            ilu.factors(),
        )?;
        write_u64s_section(&mut cw, sec::ILU_DIAG, ilu.diag_pos())?;
    }

    if let Some(g) = graph {
        write_csr_sections(
            &mut cw,
            (sec::GRAPH_INDPTR, sec::GRAPH_INDICES, sec::GRAPH_VALUES),
            g.adjacency(),
        )?;
    }
    cw.finish()?;
    Ok(())
}

/// Convenience: saves a v6 index to a file path.
pub fn save_file_v6<P: AsRef<Path>>(bepi: &BePi, graph: Option<&Graph>, path: P) -> Result<()> {
    save_v6(bepi, graph, std::fs::File::create(path)?)
}

/// Where a v6 section's payload comes from: heap copies decoded from an
/// in-memory buffer, or zero-copy [`Storage::Mapped`] views of a live
/// mapping. One decoder ([`decode_v6`]) serves both, which is how the
/// two paths stay bit-identical by construction.
trait SectionSource {
    fn has(&self, id: u32) -> bool;
    /// Raw payload bytes, copied (used only for the small META section).
    fn meta_bytes(&self, id: u32) -> Result<Vec<u8>>;
    fn u32s(&self, id: u32) -> Result<Storage<u32>>;
    fn usizes(&self, id: u32) -> Result<Storage<usize>>;
    fn f64s(&self, id: u32) -> Result<Storage<f64>>;
}

/// Heap-decoding source over a fully read file image. Payload CRCs are
/// verified for every section up front (callers already own the bytes,
/// so the scan is cheap relative to the read), then each array is
/// decoded element-wise — which also makes this path portable to
/// non-little-endian or 32-bit hosts.
struct HeapSource<'a> {
    buf: &'a [u8],
    table: Vec<SectionEntry>,
}

impl<'a> HeapSource<'a> {
    fn new(buf: &'a [u8]) -> Result<Self> {
        let table = bepi_map::parse_layout(buf).map_err(from_map_err)?;
        for e in &table {
            let payload = &buf[e.offset as usize..(e.offset + e.len) as usize];
            let computed = bepi_map::crc32(payload);
            if computed != e.crc {
                return Err(from_map_err(MapError::SectionCrc {
                    id: e.id,
                    section: sec::name(e.id),
                    stored: e.crc,
                    computed,
                }));
            }
        }
        Ok(Self { buf, table })
    }

    fn payload(&self, id: u32) -> Result<&'a [u8]> {
        let e = self.table.iter().find(|e| e.id == id).ok_or_else(|| {
            from_map_err(MapError::MissingSection {
                id,
                section: sec::name(id),
            })
        })?;
        Ok(&self.buf[e.offset as usize..(e.offset + e.len) as usize])
    }

    fn elems<T>(&self, id: u32, elem: usize, f: impl Fn(&[u8]) -> T) -> Result<Vec<T>> {
        let p = self.payload(id)?;
        if p.len() % elem != 0 {
            return Err(from_map_err(MapError::BadElementSize {
                id,
                section: sec::name(id),
                len: p.len() as u64,
                elem,
            }));
        }
        Ok(p.chunks_exact(elem).map(f).collect())
    }
}

impl SectionSource for HeapSource<'_> {
    fn has(&self, id: u32) -> bool {
        self.table.iter().any(|e| e.id == id)
    }

    fn meta_bytes(&self, id: u32) -> Result<Vec<u8>> {
        Ok(self.payload(id)?.to_vec())
    }

    fn u32s(&self, id: u32) -> Result<Storage<u32>> {
        Ok(self
            .elems(id, 4, |b| u32::from_le_bytes(b.try_into().unwrap()))?
            .into())
    }

    fn usizes(&self, id: u32) -> Result<Storage<usize>> {
        let vals = self.elems(id, 8, |b| u64::from_le_bytes(b.try_into().unwrap()))?;
        let mut out = Vec::with_capacity(vals.len());
        for v in vals {
            out.push(usize::try_from(v).map_err(|_| {
                SparseError::Parse(format!(
                    "v6 index: section {} holds value {v} exceeding this host's usize",
                    sec::name(id)
                ))
            })?);
        }
        Ok(out.into())
    }

    fn f64s(&self, id: u32) -> Result<Storage<f64>> {
        Ok(self
            .elems(id, 8, |b| f64::from_le_bytes(b.try_into().unwrap()))?
            .into())
    }
}

/// Zero-copy source over a live [`MappedIndex`]: typed sections borrow
/// the mapping directly. Payload CRCs are *not* verified here (only the
/// eagerly checked section table and META) — that is the contract that
/// keeps open time independent of index size; corruption is still
/// detectable on demand via [`MappedIndex::verify_all`].
struct MappedSource<'a> {
    idx: &'a MappedIndex,
}

impl SectionSource for MappedSource<'_> {
    fn has(&self, id: u32) -> bool {
        self.idx.has(id)
    }

    fn meta_bytes(&self, id: u32) -> Result<Vec<u8>> {
        Ok(self.idx.bytes(id).map_err(from_map_err)?.to_vec())
    }

    fn u32s(&self, id: u32) -> Result<Storage<u32>> {
        Ok(self.idx.section::<u32>(id).map_err(from_map_err)?.into())
    }

    #[cfg(target_pointer_width = "64")]
    fn usizes(&self, id: u32) -> Result<Storage<usize>> {
        Ok(self.idx.section::<usize>(id).map_err(from_map_err)?.into())
    }

    #[cfg(not(target_pointer_width = "64"))]
    fn usizes(&self, id: u32) -> Result<Storage<usize>> {
        // 32-bit hosts cannot view the on-disk u64 arrays in place.
        Err(from_map_err(MapError::Unsupported(
            "mapped indexes require a 64-bit host (use the heap loader)",
        )))
    }

    fn f64s(&self, id: u32) -> Result<Storage<f64>> {
        Ok(self.idx.section::<f64>(id).map_err(from_map_err)?.into())
    }
}

/// Parses the phase-timing block shared by v4+ streams and v6 META.
pub(crate) fn read_phases<R: Read>(r: &mut R) -> Result<(Duration, Vec<PhaseTiming>)> {
    let elapsed = Duration::from_secs_f64(read_f64(r)?.max(0.0));
    let count = read_u64(r)? as usize;
    let mut phases = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let len = read_u64(r)? as usize;
        if len > 256 {
            return Err(SparseError::Parse(format!(
                "phase name length {len} exceeds limit"
            )));
        }
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| SparseError::Parse("phase name is not UTF-8".into()))?;
        let seconds = read_f64(r)?;
        phases.push(PhaseTiming { name, seconds });
    }
    Ok((elapsed, phases))
}

fn read_csr_sections<S: SectionSource>(
    src: &S,
    ids: (u32, u32, u32),
    nrows: usize,
    ncols: usize,
) -> Result<Csr> {
    // O(1) structural checks only: the entries were validated when the
    // index was written and are covered by section CRCs (verified
    // eagerly on the heap path, on demand on the mapped path).
    Csr::from_parts_storage_trusted(
        nrows,
        ncols,
        src.usizes(ids.0)?,
        src.u32s(ids.1)?,
        src.f64s(ids.2)?,
    )
}

/// Decodes a v6 container from either backing into an instance plus the
/// embedded graph, if any.
fn decode_v6<S: SectionSource>(src: &S) -> Result<(BePi, Option<Graph>)> {
    let meta = src.meta_bytes(sec::META)?;
    let mut r: &[u8] = &meta;
    let config = read_config(&mut r)?;
    let n1 = read_u64(&mut r)? as usize;
    let n2 = read_u64(&mut r)? as usize;
    let n3 = read_u64(&mut r)? as usize;
    let slashburn_iterations = read_u64(&mut r)? as usize;
    let (elapsed, phases) = read_phases(&mut r)?;
    let n = n1 + n2 + n3;

    let perm = Permutation::from_maps_trusted(
        src.u32s(sec::PERM_NEW_OF_OLD)?,
        src.u32s(sec::PERM_OLD_OF_NEW)?,
    )?;
    if perm.len() != n {
        return Err(SparseError::Parse(format!(
            "v6 index: permutation covers {} nodes but META declares {n}",
            perm.len()
        )));
    }
    let block_sizes = src.usizes(sec::BLOCK_SIZES)?.to_vec();
    let l_inv = read_csr_sections(
        src,
        (sec::L_INV_INDPTR, sec::L_INV_INDICES, sec::L_INV_VALUES),
        n1,
        n1,
    )?;
    let u_inv = read_csr_sections(
        src,
        (sec::U_INV_INDPTR, sec::U_INV_INDICES, sec::U_INV_VALUES),
        n1,
        n1,
    )?;
    let h11_lu = bepi_solver::BlockLu::from_inverse_factors_trusted(l_inv, u_inv, block_sizes)?;
    let s = read_csr_sections(src, (sec::S_INDPTR, sec::S_INDICES, sec::S_VALUES), n2, n2)?;
    let h12 = read_csr_sections(
        src,
        (sec::H12_INDPTR, sec::H12_INDICES, sec::H12_VALUES),
        n1,
        n2,
    )?;
    let h21 = read_csr_sections(
        src,
        (sec::H21_INDPTR, sec::H21_INDICES, sec::H21_VALUES),
        n2,
        n1,
    )?;
    let h31 = read_csr_sections(
        src,
        (sec::H31_INDPTR, sec::H31_INDICES, sec::H31_VALUES),
        n3,
        n1,
    )?;
    let h32 = read_csr_sections(
        src,
        (sec::H32_INDPTR, sec::H32_INDICES, sec::H32_VALUES),
        n3,
        n2,
    )?;

    let ilu = if src.has(sec::ILU_INDPTR) {
        let factors = read_csr_sections(
            src,
            (sec::ILU_INDPTR, sec::ILU_INDICES, sec::ILU_VALUES),
            n2,
            n2,
        )?;
        Some(Ilu0::from_parts(factors, src.usizes(sec::ILU_DIAG)?)?)
    } else {
        None
    };
    let graph = if src.has(sec::GRAPH_INDPTR) {
        let adj = read_csr_sections(
            src,
            (sec::GRAPH_INDPTR, sec::GRAPH_INDICES, sec::GRAPH_VALUES),
            n,
            n,
        )?;
        Some(Graph::from_adjacency(adj)?)
    } else {
        None
    };

    let bepi = BePi::from_raw_parts(RawParts {
        config,
        perm,
        n1,
        n2,
        n3,
        h11_lu,
        s,
        ilu,
        h12,
        h21,
        h31,
        h32,
        slashburn_iterations,
        elapsed,
        phases,
    })?;
    Ok((bepi, graph))
}

/// Opens a v6 index file as a shared read-only memory mapping and builds
/// an instance whose arrays borrow the mapping zero-copy.
///
/// Open cost is `O(#sections)`: magic/version/footer and the section
/// table (plus the small META section) are CRC-verified eagerly, while
/// array payloads are faulted in lazily by the page cache as queries
/// touch them. `MADV_WILLNEED` is issued for the hot sections (the
/// `H11` inverse factors and ILU factors, which every query walks) so
/// the kernel starts readahead immediately. Requires format v6 — older
/// files fail with a version error; use [`file_format_version`] to
/// decide between this and the heap loader.
pub fn load_mapped_file<P: AsRef<Path>>(path: P) -> Result<(BePi, Option<Graph>)> {
    let idx = MappedIndex::open(path).map_err(from_map_err)?;
    idx.verify(sec::META).map_err(from_map_err)?;
    for id in [
        sec::L_INV_INDPTR,
        sec::L_INV_INDICES,
        sec::L_INV_VALUES,
        sec::U_INV_INDPTR,
        sec::U_INV_INDICES,
        sec::U_INV_VALUES,
        sec::ILU_INDPTR,
        sec::ILU_INDICES,
        sec::ILU_VALUES,
        sec::ILU_DIAG,
    ] {
        idx.advise_willneed(id);
    }
    decode_v6(&MappedSource { idx: &idx })
}

/// Verifies every section CRC of a mappable v6 file — the payload
/// checks that [`load_mapped_file`] deliberately skips to keep open
/// time independent of index size. Costs one read pass over the whole
/// file; returns the typed per-section error on the first mismatch.
///
/// Use this where a full integrity check is worth a full read: one-shot
/// CLI queries, post-transfer validation, scrubbing. A long-running
/// daemon instead relies on the per-connection panic guard — a query
/// that trips over a corrupt payload fails alone, it cannot take the
/// process down.
pub fn verify_mapped_file<P: AsRef<Path>>(path: P) -> Result<()> {
    let idx = MappedIndex::open(path).map_err(from_map_err)?;
    idx.verify_all().map_err(from_map_err)
}

/// Reads the format version of an index file from its 8-byte prefix
/// (shared by every version since v1), without loading anything.
pub fn file_format_version<P: AsRef<Path>>(path: P) -> Result<u32> {
    let mut f = std::fs::File::open(path)?;
    let mut prefix = [0u8; 8];
    f.read_exact(&mut prefix)?;
    if &prefix[..4] != MAGIC {
        return Err(SparseError::Parse(format!(
            "not a BePI file (magic {:?})",
            &prefix[..4]
        )));
    }
    Ok(u32::from_le_bytes(prefix[4..8].try_into().unwrap()))
}

/// Reads a preprocessed instance from a stream. Accepts every format
/// version back to v1: v4/v5 carry phase timings (v5 also embeds the
/// graph, discarded here — use [`load_with_graph`] to keep it), v2/v3 are
/// checksum-verified without timings, and legacy v1 has no trailer.
pub fn load<R: Read>(reader: R) -> Result<BePi> {
    load_with_graph(reader).map(|(bepi, _)| bepi)
}

/// Like [`load`], but also returns the embedded adjacency graph when the
/// file embeds one (v3/v5; `None` otherwise).
pub fn load_with_graph<R: Read>(reader: R) -> Result<(BePi, Option<Graph>)> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse(format!(
            "not a BePI file (magic {magic:?})"
        )));
    }
    let version = read_u32(&mut r)?;
    match version {
        1 => Ok((BePi::read_parts(&mut r, false)?, None)),
        VERSION_MAPPED => {
            // Heap load of a mappable container: slurp the file image,
            // re-prefix the already consumed magic + version, and decode
            // with every section checksum verified.
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&version.to_le_bytes());
            r.read_to_end(&mut buf)?;
            decode_v6(&HeapSource::new(&buf)?)
        }
        2..=5 => {
            let with_phases = version >= 4;
            let with_graph = version == 3 || version == 5;
            let mut cr = CrcReader::new(r);
            let bepi = BePi::read_parts(&mut cr, with_phases)?;
            let graph = if with_graph {
                Some(Graph::from_adjacency(read_csr(&mut cr)?)?)
            } else {
                None
            };
            let computed = cr.crc.finalize();
            let mut r = cr.inner;
            let stored = read_u32(&mut r)?;
            if stored != computed {
                return Err(SparseError::Parse(format!(
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} \
                     (file is corrupt)"
                )));
            }
            Ok((bepi, graph))
        }
        v => Err(SparseError::Parse(format!(
            "unsupported BePI format version {v} (expected {MIN_VERSION}..={MAX_VERSION})"
        ))),
    }
}

/// Convenience: saves to a file path.
pub fn save_file<P: AsRef<Path>>(bepi: &BePi, path: P) -> Result<()> {
    save(bepi, std::fs::File::create(path)?)
}

/// Convenience: loads from a file path.
pub fn load_file<P: AsRef<Path>>(path: P) -> Result<BePi> {
    load(std::fs::File::open(path)?)
}

/// Convenience: saves a live-capable (v3) index to a file path.
pub fn save_file_with_graph<P: AsRef<Path>>(bepi: &BePi, graph: &Graph, path: P) -> Result<()> {
    save_with_graph(bepi, graph, std::fs::File::create(path)?)
}

/// Convenience: loads index + optional embedded graph from a file path.
pub fn load_file_with_graph<P: AsRef<Path>>(path: P) -> Result<(BePi, Option<Graph>)> {
    load_with_graph(std::fs::File::open(path)?)
}

// --- primitive readers/writers (little endian) ---

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

pub(crate) fn write_usize_slice<W: Write>(w: &mut W, s: &[usize]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

/// Caps speculative preallocation: trust `len` only up to
/// [`MAX_PREALLOC_BYTES`]; beyond that the vector grows as elements are
/// actually read, so a truncated stream errors before memory does.
fn bounded_capacity(len: usize, elem_size: usize) -> usize {
    len.min(MAX_PREALLOC_BYTES / elem_size.max(1))
}

pub(crate) fn read_usize_vec<R: Read>(r: &mut R) -> Result<Vec<usize>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(bounded_capacity(len, size_of::<usize>()));
    for _ in 0..len {
        out.push(read_u64(r)? as usize);
    }
    Ok(out)
}

pub(crate) fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_u32(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_u32_vec<R: Read>(r: &mut R) -> Result<Vec<u32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(bounded_capacity(len, size_of::<u32>()));
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

pub(crate) fn write_f64_slice<W: Write>(w: &mut W, s: &[f64]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_f64(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_f64_vec<R: Read>(r: &mut R) -> Result<Vec<f64>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(bounded_capacity(len, size_of::<f64>()));
    for _ in 0..len {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

pub(crate) fn write_csr<W: Write>(w: &mut W, m: &Csr) -> Result<()> {
    write_u64(w, m.nrows() as u64)?;
    write_u64(w, m.ncols() as u64)?;
    write_usize_slice(w, m.indptr())?;
    write_u32_slice(w, m.indices())?;
    write_f64_slice(w, m.values())
}

pub(crate) fn read_csr<R: Read>(r: &mut R) -> Result<Csr> {
    let nrows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    let indptr = read_usize_vec(r)?;
    // Validate array lengths against the header before reading further:
    // a CSR always has nrows + 1 row pointers, and the last pointer is
    // the nnz both remaining arrays must match.
    if indptr.len() != nrows + 1 {
        return Err(SparseError::Parse(format!(
            "corrupt CSR header: {nrows} rows but {} row pointers (expected {})",
            indptr.len(),
            nrows + 1
        )));
    }
    let nnz = *indptr.last().unwrap_or(&0);
    let indices = read_u32_vec(r)?;
    if indices.len() != nnz {
        return Err(SparseError::Parse(format!(
            "corrupt CSR: indptr declares {nnz} nonzeros but {} column indices follow",
            indices.len()
        )));
    }
    let values = read_f64_vec(r)?;
    if values.len() != nnz {
        return Err(SparseError::Parse(format!(
            "corrupt CSR: indptr declares {nnz} nonzeros but {} values follow",
            values.len()
        )));
    }
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

pub(crate) fn write_permutation<W: Write>(w: &mut W, p: &Permutation) -> Result<()> {
    write_u32_slice(w, p.new_of_old())
}

pub(crate) fn read_permutation<R: Read>(r: &mut R) -> Result<Permutation> {
    Permutation::from_new_of_old(read_u32_vec(r)?)
}

pub(crate) fn write_config<W: Write>(w: &mut W, c: &BePiConfig) -> Result<()> {
    use crate::bepi::{BePiVariant, InnerSolver, PrecondKind};
    write_u32(
        w,
        match c.variant {
            BePiVariant::Basic => 0,
            BePiVariant::Sparse => 1,
            BePiVariant::Full => 2,
        },
    )?;
    write_f64(w, c.c)?;
    write_f64(w, c.tol)?;
    write_f64(w, c.hub_ratio.unwrap_or(f64::NAN))?;
    write_u64(w, c.gmres_restart as u64)?;
    write_u64(w, c.max_iters as u64)?;
    write_u32(
        w,
        match c.inner {
            InnerSolver::Gmres => 0,
            InnerSolver::BiCgStab => 1,
        },
    )?;
    let (pk, order) = match c.precond {
        PrecondKind::Ilu0 => (0u32, 0u64),
        PrecondKind::Jacobi => (1, 0),
        PrecondKind::Neumann(t) => (2, t as u64),
    };
    write_u32(w, pk)?;
    write_u64(w, order)
}

pub(crate) fn read_config<R: Read>(r: &mut R) -> Result<BePiConfig> {
    use crate::bepi::{BePiVariant, InnerSolver, PrecondKind};
    let variant = match read_u32(r)? {
        0 => BePiVariant::Basic,
        1 => BePiVariant::Sparse,
        2 => BePiVariant::Full,
        v => return Err(SparseError::Parse(format!("bad variant tag {v}"))),
    };
    let c = read_f64(r)?;
    let tol = read_f64(r)?;
    let hub = read_f64(r)?;
    let gmres_restart = read_u64(r)? as usize;
    let max_iters = read_u64(r)? as usize;
    let inner = match read_u32(r)? {
        0 => InnerSolver::Gmres,
        1 => InnerSolver::BiCgStab,
        v => return Err(SparseError::Parse(format!("bad inner-solver tag {v}"))),
    };
    let precond = match (read_u32(r)?, read_u64(r)?) {
        (0, _) => PrecondKind::Ilu0,
        (1, _) => PrecondKind::Jacobi,
        (2, t) => PrecondKind::Neumann(t as usize),
        (v, _) => return Err(SparseError::Parse(format!("bad precond tag {v}"))),
    };
    Ok(BePiConfig {
        variant,
        c,
        tol,
        hub_ratio: if hub.is_nan() { None } else { Some(hub) },
        gmres_restart,
        max_iters,
        inner,
        precond,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use bepi_graph::generators;

    fn roundtrip(cfg: &BePiConfig) {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 61).unwrap();
        let original = BePi::preprocess(&g, cfg).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(restored.preprocessed_bytes(), original.preprocessed_bytes());
        assert_eq!(restored.schur(), original.schur());
        for seed in [0usize, 31, 100] {
            let a = original.query(seed).unwrap();
            let b = restored.query(seed).unwrap();
            assert_eq!(a.scores, b.scores, "queries must be bit-identical");
            assert_eq!(a.iterations, b.iterations);
        }
    }

    #[test]
    fn roundtrip_full_variant() {
        roundtrip(&BePiConfig::default());
    }

    #[test]
    fn roundtrip_basic_variant() {
        roundtrip(&BePiConfig::for_variant(BePiVariant::Basic));
    }

    #[test]
    fn roundtrip_jacobi_and_neumann_preconds() {
        roundtrip(&BePiConfig {
            precond: PrecondKind::Jacobi,
            ..BePiConfig::default()
        });
        roundtrip(&BePiConfig {
            precond: PrecondKind::Neumann(3),
            inner: InnerSolver::BiCgStab,
            ..BePiConfig::default()
        });
    }

    #[test]
    fn roundtrip_through_file() {
        let g = generators::erdos_renyi(100, 400, 5).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let path = std::env::temp_dir().join("bepi_persist_test.bin");
        save_file(&original, &path).unwrap();
        let restored = load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(load(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental updates must agree with the one-shot form.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finalize(), 0xCBF4_3926);
    }

    #[test]
    fn detects_single_byte_corruption() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        // Flip one bit in several payload positions. Every corruption must
        // be rejected — by a parse error or, where the mangled bytes still
        // parse, by the checksum trailer.
        let payload = 8..buf.len() - 4;
        for pos in [
            payload.start,
            payload.start + payload.len() / 3,
            payload.start + payload.len() / 2,
            payload.end - 1,
        ] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(load(&bad[..]).is_err(), "corruption at byte {pos} accepted");
        }
    }

    #[test]
    fn v3_roundtrips_graph_and_queries() {
        let g = generators::erdos_renyi(80, 320, 23).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_with_graph(&original, &g, &mut buf).unwrap();
        let (restored, graph) = load_with_graph(&buf[..]).unwrap();
        assert_eq!(graph.as_ref().unwrap().adjacency(), g.adjacency());
        assert_eq!(
            original.query(5).unwrap().scores,
            restored.query(5).unwrap().scores
        );
        // Plain load must also accept v3 (ignoring the graph).
        let plain = load(&buf[..]).unwrap();
        assert_eq!(
            original.query(5).unwrap().scores,
            plain.query(5).unwrap().scores
        );
        // A v2 file reports no embedded graph.
        let mut v2 = Vec::new();
        save(&original, &mut v2).unwrap();
        assert!(load_with_graph(&v2[..]).unwrap().1.is_none());
    }

    #[test]
    fn v3_detects_corruption_in_graph_section() {
        let g = generators::cycle(12);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_with_graph(&original, &g, &mut buf).unwrap();
        // Flip a bit near the end of the payload (inside the graph CSR).
        let pos = buf.len() - 12;
        buf[pos] ^= 0x01;
        assert!(load_with_graph(&buf[..]).is_err());
    }

    #[test]
    fn save_with_graph_rejects_node_count_mismatch() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let other = generators::cycle(11);
        let mut buf = Vec::new();
        assert!(save_with_graph(&original, &other, &mut buf).is_err());
    }

    #[test]
    fn still_reads_v1_files_without_trailer() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // Hand-assemble a legacy v1 file: magic, version 1, bare payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        original.write_parts(&mut buf, false).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
    }

    #[test]
    fn still_reads_v2_files_without_phase_timings() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // Hand-assemble a v2 file: magic, version 2, CRC envelope, no
        // phase-timing section.
        let mut payload = Vec::new();
        original.write_parts(&mut payload, false).unwrap();
        let mut crc = Crc32::new();
        crc.update(&payload);
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(&crc.finalize().to_le_bytes());
        let restored = load(&buf[..]).unwrap();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
        assert!(restored.stats().phases.is_empty());
    }

    #[test]
    fn phase_timings_survive_save_load_round_trip() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert_eq!(original.stats().phases.len(), 6);
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(restored.stats().phases, original.stats().phases);
        assert_eq!(restored.stats().elapsed, original.stats().elapsed);
        let names: Vec<&str> = restored
            .stats()
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "deadend",
                "slashburn",
                "assemble",
                "block_lu",
                "schur",
                "precond"
            ]
        );
    }

    #[test]
    fn bogus_length_prefix_fails_cleanly() {
        // A length field claiming 2^60 elements must produce an error, not
        // an allocation abort.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(read_f64_vec(&mut &buf[..]).is_err());
        assert!(read_u32_vec(&mut &buf[..]).is_err());
        assert!(read_usize_vec(&mut &buf[..]).is_err());
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bepi_persist_v6_{name}_{}", std::process::id()))
    }

    #[test]
    fn v6_heap_roundtrip_is_bit_identical() {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 61).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_v6(&original, Some(&g), &mut buf).unwrap();
        let (restored, graph) = load_with_graph(&buf[..]).unwrap();
        assert_eq!(graph.unwrap().adjacency(), g.adjacency());
        assert_eq!(restored.schur(), original.schur());
        assert_eq!(restored.stats().phases, original.stats().phases);
        assert_eq!(restored.preprocessed_bytes(), original.preprocessed_bytes());
        for seed in [0usize, 31, 100] {
            let a = original.query(seed).unwrap();
            let b = restored.query(seed).unwrap();
            assert_eq!(a.scores, b.scores, "v6 heap load must be bit-identical");
            assert_eq!(a.iterations, b.iterations);
        }
        assert!(!restored.is_mapped());
        assert_eq!(restored.mapped_bytes(), 0);
    }

    #[test]
    fn v6_mapped_load_matches_heap_load() {
        let g = generators::rmat(7, 600, generators::RmatParams::default(), 17).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let path = temp_path("mapped");
        save_file_v6(&original, Some(&g), &path).unwrap();
        let heap = load_file(&path).unwrap();
        let (mapped, graph) = load_mapped_file(&path).unwrap();
        assert_eq!(graph.unwrap().adjacency(), g.adjacency());
        assert!(mapped.is_mapped());
        assert!(mapped.mapped_bytes() > 0);
        // The big arrays are all served from the file; only recomputed
        // preconditioners or small owned bits may sit on the heap.
        assert!(mapped.mapped_bytes() > mapped.heap_bytes());
        for seed in [0usize, 5, 99] {
            let a = original.query(seed).unwrap();
            let b = heap.query(seed).unwrap();
            let c = mapped.query(seed).unwrap();
            assert_eq!(a.scores, b.scores);
            assert_eq!(b.scores, c.scores, "mapped serving must be bit-identical");
            assert_eq!(b.iterations, c.iterations);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v6_without_graph_and_without_ilu() {
        let g = generators::erdos_renyi(120, 500, 9).unwrap();
        // BePI-S builds no preconditioner → no ILU sections.
        let original = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Sparse)).unwrap();
        let mut buf = Vec::new();
        save_v6(&original, None, &mut buf).unwrap();
        let table = bepi_map::parse_layout(&buf).unwrap();
        use bepi_map::sections as s;
        assert!(!table.iter().any(|e| e.id == s::ILU_INDPTR));
        assert!(!table.iter().any(|e| e.id == s::GRAPH_INDPTR));
        let (restored, graph) = load_with_graph(&buf[..]).unwrap();
        assert!(graph.is_none());
        assert_eq!(
            original.query(7).unwrap().scores,
            restored.query(7).unwrap().scores
        );
    }

    #[test]
    fn v6_persists_ilu_factors() {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 41).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_v6(&original, None, &mut buf).unwrap();
        let table = bepi_map::parse_layout(&buf).unwrap();
        use bepi_map::sections as s;
        for id in [s::ILU_INDPTR, s::ILU_INDICES, s::ILU_VALUES, s::ILU_DIAG] {
            assert!(table.iter().any(|e| e.id == id), "missing {}", s::name(id));
        }
        let restored = load(&buf[..]).unwrap();
        assert_eq!(
            restored.preconditioner().unwrap().factors(),
            original.preconditioner().unwrap().factors()
        );
    }

    #[test]
    fn v6_heap_load_detects_payload_corruption() {
        let g = generators::cycle(20);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_v6(&original, None, &mut buf).unwrap();
        let table = bepi_map::parse_layout(&buf).unwrap();
        // Flip one byte inside every section payload: the heap loader
        // must reject each corruption with an error naming the section.
        for e in &table {
            if e.len == 0 {
                continue;
            }
            let mut bad = buf.clone();
            bad[(e.offset + e.len / 2) as usize] ^= 0x20;
            let err = load(&bad[..]).unwrap_err().to_string();
            assert!(
                err.contains("checksum") || err.contains(bepi_map::sections::name(e.id)),
                "corruption in {} produced unrelated error: {err}",
                bepi_map::sections::name(e.id)
            );
        }
    }

    #[test]
    fn v6_mapped_open_rejects_old_formats_and_corrupt_tables() {
        let g = generators::cycle(15);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // A v4 file is not mappable.
        let v4 = temp_path("v4");
        save_file(&original, &v4).unwrap();
        assert!(load_mapped_file(&v4).is_err());
        assert_eq!(file_format_version(&v4).unwrap(), 4);
        // A truncated v6 file loses its footer.
        let v6 = temp_path("trunc");
        save_file_v6(&original, None, &v6).unwrap();
        assert_eq!(file_format_version(&v6).unwrap(), VERSION_MAPPED);
        let bytes = std::fs::read(&v6).unwrap();
        std::fs::write(&v6, &bytes[..bytes.len() - 10]).unwrap();
        assert!(load_mapped_file(&v6).is_err());
        std::fs::remove_file(&v4).ok();
        std::fs::remove_file(&v6).ok();
    }

    #[test]
    fn v6_memory_report_accounts_every_component() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 3).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let path = temp_path("report");
        save_file_v6(&original, None, &path).unwrap();
        let (mapped, _) = load_mapped_file(&path).unwrap();
        let report = mapped.memory_report();
        let names: Vec<&str> = report.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            ["perm", "l1_inv", "u1_inv", "schur", "precond", "h12", "h21", "h31", "h32"]
        );
        for c in &report {
            assert_eq!(
                c.heap_bytes, 0,
                "{} should be fully mapped (zero heap)",
                c.name
            );
        }
        assert_eq!(
            report.iter().map(|c| c.mapped_bytes).sum::<usize>(),
            mapped.mapped_bytes()
        );
        // Logical accounting is backing-independent.
        assert_eq!(mapped.preprocessed_bytes(), original.preprocessed_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_header_mismatch_is_rejected() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        original.write_parts(&mut buf, false).unwrap();
        // Corrupt the very first CSR length field we can find by writing a
        // stream that declares 5 rows but carries 3 row pointers.
        let mut csr = Vec::new();
        write_u64(&mut csr, 5).unwrap(); // nrows
        write_u64(&mut csr, 5).unwrap(); // ncols
        write_usize_slice(&mut csr, &[0, 1, 2]).unwrap(); // wrong: needs 6
        let err = read_csr(&mut &csr[..]).unwrap_err();
        assert!(err.to_string().contains("row pointers"), "{err}");
    }
}
