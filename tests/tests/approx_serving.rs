//! End-to-end tests of the daemon's approximate serving lane: `?mode=`
//! routing, the `X-Approx` response header, exact/approx cache
//! isolation, and the graceful-degradation path where a saturated
//! admission queue downgrades `mode=auto` queries to the approximate
//! engine instead of shedding them with 503.

use bepi_core::prelude::*;
use bepi_graph::Graph;
use bepi_server::worker::render_query_body;
use bepi_server::{parse_metric, QueryKey, ResponseMode, Server, ServerConfig, ServerHandle};
use bepi_walk::{ApproxConfig, ApproxEngine};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn graph() -> &'static Graph {
    static GRAPH: OnceLock<Graph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        bepi_graph::generators::rmat(7, 500, bepi_graph::generators::RmatParams::default(), 61)
            .unwrap()
    })
}

fn solver() -> Arc<BePi> {
    static SOLVER: OnceLock<Arc<BePi>> = OnceLock::new();
    Arc::clone(
        SOLVER.get_or_init(|| Arc::new(BePi::preprocess(graph(), &BePiConfig::default()).unwrap())),
    )
}

/// A frozen snapshot *with* its graph, so the approximate lane is live.
fn start(config: &ServerConfig) -> ServerHandle {
    let engine = bepi_live::LiveEngine::frozen_with_graph(
        solver(),
        graph().clone(),
        ApproxConfig::default(),
    );
    Server::start_live(engine, config).expect("server must bind an ephemeral port")
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn get(addr: SocketAddr, target: &str) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("blank line");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn exact_body(seed: usize, top_k: usize) -> String {
    let scores = solver().query(seed).unwrap();
    render_query_body(
        QueryKey {
            seed,
            top_k,
            version: 1,
            mode: ResponseMode::Exact,
        },
        &scores,
    )
}

/// What the daemon must serve for `mode=approx`: the default-config
/// engine's deterministic scores, rendered with the approx cache key.
fn approx_body(seed: usize, top_k: usize, epoch: u64) -> String {
    let engine = ApproxEngine::new(
        Arc::new(graph().clone()),
        BePiConfig::default().c,
        ApproxConfig::default(),
    )
    .unwrap();
    let scores = engine.query(seed, epoch).unwrap();
    render_query_body(
        QueryKey {
            seed,
            top_k,
            version: 1,
            mode: ResponseMode::Approx { epoch },
        },
        &scores,
    )
}

#[test]
fn mode_routing_and_x_approx_header() {
    let handle = start(&ServerConfig::default());
    let addr = handle.local_addr();

    // Explicit exact, and the default (auto, unpressured): exact answers,
    // no X-Approx.
    for target in ["/query?seed=5&top=8&mode=exact", "/query?seed=5&top=8"] {
        let r = get(addr, target);
        assert_eq!(r.status, 200, "{target}");
        assert_eq!(r.header("x-approx"), None, "{target}");
        assert_eq!(r.body, exact_body(5, 8), "{target}");
    }

    // Explicit approx: flagged and answered by the approximate engine.
    let r = get(addr, "/query?seed=5&top=8&mode=approx");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-approx"), Some("1"));
    assert_eq!(r.body, approx_body(5, 8, 0));
    assert_ne!(r.body, exact_body(5, 8), "approx must not equal exact");

    // The epoch is part of the response identity even for the default
    // (TPA) engine, which ignores it numerically.
    let r = get(addr, "/query?seed=5&top=8&mode=approx&epoch=3");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-approx"), Some("1"));
    assert_eq!(r.body, approx_body(5, 8, 3));

    // Unknown modes are client errors, not silent fallbacks.
    let r = get(addr, "/query?seed=5&mode=fast");
    assert_eq!(r.status, 400);

    let metrics = handle.metrics().render();
    assert!(parse_metric(&metrics, "bepi_approx_requests_total").unwrap() >= 2.0);
    handle.shutdown();
}

#[test]
fn cache_never_crosses_exact_and_approx_lanes() {
    let handle = start(&ServerConfig::default());
    let addr = handle.local_addr();

    // Warm the exact entry for this (seed, top) pair and confirm the
    // repeat is a cache hit.
    let first = get(addr, "/query?seed=9&top=6&mode=exact");
    let repeat = get(addr, "/query?seed=9&top=6&mode=exact");
    assert_eq!(first.body, repeat.body);
    let hits_after_exact =
        parse_metric(&handle.metrics().render(), "bepi_cache_hits_total").unwrap();
    assert!(hits_after_exact >= 1.0, "exact repeat must hit the cache");

    // The approx query for the same (seed, top) must NOT be answered by
    // that cached exact entry — the resolved mode is part of the key.
    let approx = get(addr, "/query?seed=9&top=6&mode=approx");
    assert_eq!(approx.header("x-approx"), Some("1"));
    assert_ne!(
        approx.body, first.body,
        "a stale exact entry must never answer an approx query"
    );
    assert_eq!(approx.body, approx_body(9, 6, 0));

    // And vice versa: with the approx entry now cached, exact still gets
    // the exact body.
    let exact_again = get(addr, "/query?seed=9&top=6&mode=exact");
    assert_eq!(exact_again.header("x-approx"), None);
    assert_eq!(exact_again.body, first.body);

    // Approx repeats are byte-identical (deterministic engine + cache).
    let approx_repeat = get(addr, "/query?seed=9&top=6&mode=approx");
    assert_eq!(approx_repeat.body, approx.body);
    handle.shutdown();
}

#[test]
fn pressure_zero_degrades_every_auto_query() {
    // `pressure: 0.0` marks the daemon as always-pressured — the
    // deterministic hook for exercising degradation without a race.
    let handle = start(&ServerConfig {
        pressure: 0.0,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    let auto = get(addr, "/query?seed=3&top=5&mode=auto");
    assert_eq!(auto.status, 200);
    assert_eq!(auto.header("x-approx"), Some("1"));
    assert_eq!(auto.body, approx_body(3, 5, 0));

    // Explicit exact is still honored: pressure only redirects `auto`.
    let exact = get(addr, "/query?seed=3&top=5&mode=exact");
    assert_eq!(exact.status, 200);
    assert_eq!(exact.header("x-approx"), None);
    assert_eq!(exact.body, exact_body(3, 5));
    handle.shutdown();
}

#[test]
fn saturated_queue_degrades_auto_and_sheds_exact() {
    let handle = start(&ServerConfig {
        threads: 1,
        queue_depth: 1,
        timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // One idle connection occupies the lone worker, a second fills the
    // admission queue (same recipe as the exact-only shed test).
    let hold1 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let hold2 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // `auto` overflows into the degraded lane and still gets an answer —
    // approximate, flagged, 200.
    let auto = get(addr, "/query?seed=4&top=5&mode=auto");
    assert_eq!(auto.status, 200, "auto must degrade, not shed");
    assert_eq!(auto.header("x-approx"), Some("1"));
    assert_eq!(auto.body, approx_body(4, 5, 0));

    // Explicit exact cannot be downgraded, so under saturation it sheds.
    let exact = get(addr, "/query?seed=4&top=5&mode=exact");
    assert_eq!(exact.status, 503);

    let metrics = handle.metrics().render();
    assert!(parse_metric(&metrics, "bepi_degraded_total").unwrap() >= 2.0);
    assert!(parse_metric(&metrics, "bepi_approx_requests_total").unwrap() >= 1.0);

    // Releasing the held connections restores the exact lane.
    drop(hold1);
    drop(hold2);
    std::thread::sleep(Duration::from_millis(300));
    let recovered = get(addr, "/query?seed=4&top=5&mode=exact");
    assert_eq!(recovered.status, 200);
    assert_eq!(recovered.body, exact_body(4, 5));
    handle.shutdown();
}
