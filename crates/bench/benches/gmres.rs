//! Criterion microbenchmarks isolating the iterative Schur solve
//! (Algorithm 2/4 line 4): plain vs ILU(0)-preconditioned GMRES on a real
//! Schur complement — the mechanism behind Table 4.

use bepi_core::hmatrix::HPartition;
use bepi_graph::Dataset;
use bepi_solver::{gmres, BlockLu, GmresConfig, Ilu0, Preconditioner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_gmres(c: &mut Criterion) {
    let ds = Dataset::Wikipedia;
    let g = ds.generate();
    let p = HPartition::build(&g, 0.05, ds.spec().hub_ratio).unwrap();
    let blu = BlockLu::factor(&p.h11, &p.block_sizes).unwrap();
    let s = bepi_core::schur::schur_complement(&p, &blu).unwrap();
    let ilu = Ilu0::factor(&s).unwrap();
    let b: Vec<f64> = (0..s.nrows())
        .map(|i| if i % 97 == 0 { 0.05 } else { 0.0 })
        .collect();
    let cfg = GmresConfig::default();

    let mut group = c.benchmark_group("gmres/wikipedia-like-schur");
    group.sample_size(20);
    group.bench_function("plain", |bch| {
        bch.iter(|| black_box(gmres(&s, black_box(&b), None, None, &cfg).unwrap()))
    });
    group.bench_function("ilu0_preconditioned", |bch| {
        bch.iter(|| {
            black_box(
                gmres(
                    &s,
                    black_box(&b),
                    None,
                    Some(&ilu as &dyn Preconditioner),
                    &cfg,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("ilu0_apply", |bch| {
        let mut z = vec![0.0; s.nrows()];
        bch.iter(|| ilu.apply(black_box(&b), &mut z))
    });
    group.finish();
}

criterion_group!(benches, bench_gmres);
criterion_main!(benches);
