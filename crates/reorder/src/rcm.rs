//! Reverse Cuthill–McKee (RCM) ordering.
//!
//! The classic bandwidth-reducing ordering for sparse factorizations — an
//! alternative to the degree ordering the LU baseline uses (Fujiwara et
//! al. reorder "based on the degrees of nodes and community structures";
//! RCM is the textbook structure-aware choice and serves as an extra
//! ablation point for LU fill-in).

use bepi_graph::Graph;
use bepi_sparse::{Csr, Permutation};
use std::collections::VecDeque;

/// Computes the RCM ordering of a graph's symmetrized structure.
///
/// BFS from a minimum-degree node of each component, visiting neighbors
/// in ascending-degree order, then reversing the whole sequence.
/// Deterministic: components are entered in ascending order of their
/// minimum node id; degree ties break toward the lower id.
pub fn rcm_order(g: &Graph) -> Permutation {
    rcm_order_structure(&g.undirected_structure())
}

/// RCM on an explicit symmetric adjacency structure.
pub fn rcm_order_structure(adj: &Csr) -> Permutation {
    let n = adj.nrows();
    assert_eq!(n, adj.ncols(), "RCM needs a square structure");
    let degree: Vec<usize> = (0..n).map(|u| adj.row_nnz(u)).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut neighbors: Vec<u32> = Vec::new();

    // Candidate start nodes sorted by (degree, id): each unvisited pop is
    // the minimum-degree entry point of its component.
    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_unstable_by_key(|&u| (degree[u as usize], u));

    for &start in &starts {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbors.clear();
            for (v, _) in adj.row_iter(u as usize) {
                if !visited[v] {
                    visited[v] = true;
                    neighbors.push(v as u32);
                }
            }
            neighbors.sort_unstable_by_key(|&v| (degree[v as usize], v));
            for &v in &neighbors {
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    Permutation::from_old_of_new(order).expect("BFS covers every node exactly once")
}

/// Structural bandwidth of a square matrix: `max |i − j|` over stored
/// entries (0 for diagonal/empty matrices). The quantity RCM minimizes.
pub fn bandwidth(a: &Csr) -> usize {
    a.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn is_a_valid_permutation() {
        let g = generators::erdos_renyi(80, 320, 7).unwrap();
        let p = rcm_order(&g);
        let mut seen = [false; 80];
        for u in 0..80 {
            let l = p.apply(u);
            assert!(!seen[l]);
            seen[l] = true;
        }
    }

    #[test]
    fn reduces_bandwidth_on_shuffled_path() {
        // A path graph shuffled to a random labeling has large bandwidth;
        // RCM recovers a near-path ordering with bandwidth ~1.
        let n = 60;
        let shuffled: Vec<usize> = (0..n).map(|i| (i * 37) % n).collect();
        let edges: Vec<(usize, usize)> =
            (0..n - 1).map(|i| (shuffled[i], shuffled[i + 1])).collect();
        let g = Graph::from_undirected_edges(n, &edges).unwrap();
        let before = bandwidth(&g.undirected_structure());
        let p = rcm_order(&g);
        let after = bandwidth(&p.permute_symmetric(&g.undirected_structure()).unwrap());
        assert!(
            after <= 2,
            "RCM bandwidth on a path should be ≤ 2, got {after}"
        );
        assert!(before > after);
    }

    #[test]
    fn reduces_bandwidth_on_grid() {
        let g = generators::grid(8, 8);
        let before = bandwidth(&g.undirected_structure());
        let p = rcm_order(&g);
        let after = bandwidth(&p.permute_symmetric(&g.undirected_structure()).unwrap());
        assert!(
            after <= before,
            "RCM must not worsen grid bandwidth: {before} -> {after}"
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_undirected_edges(7, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let p = rcm_order(&g);
        assert_eq!(p.len(), 7);
        // Every node labeled exactly once (validated by constructor).
        let labels: std::collections::HashSet<usize> = (0..7).map(|u| p.apply(u)).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn deterministic() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 3).unwrap();
        assert_eq!(rcm_order(&g), rcm_order(&g));
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        assert_eq!(bandwidth(&Csr::identity(5)), 0);
        assert_eq!(bandwidth(&Csr::zeros(4, 4)), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let p = rcm_order(&g);
        assert_eq!(p.len(), 0);
    }
}
