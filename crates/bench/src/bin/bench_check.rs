//! Schema validator for `bepi bench` artifacts.
//!
//! Usage: `bench_check BENCH_PR4.json [...]` — exits non-zero with a
//! diagnostic if any file is not a valid `bepi-bench/v1` document. CI
//! runs this on the smoke artifact so the schema cannot silently drift.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: bench_check <BENCH_*.json>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match bepi_bench::perf::validate_json(&text) {
            Ok(()) => println!("{path}: ok ({})", bepi_bench::perf::SCHEMA),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
