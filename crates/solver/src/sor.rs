//! Gauss–Seidel / SOR iteration — the remaining classic stationary
//! solver, completing the iterative-method family (power iteration and
//! Jacobi live in sibling modules). Converges for the strictly diagonally
//! dominant systems BePI builds; typically ~2× fewer iterations than
//! Jacobi on them.

use bepi_sparse::vecops::norm2;
use bepi_sparse::{Csr, Result, SparseError};

/// Configuration for SOR iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SorConfig {
    /// Relaxation factor ω ∈ (0, 2); ω = 1 is plain Gauss–Seidel.
    pub omega: f64,
    /// Convergence tolerance on `‖x_i − x_{i−1}‖₂`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for SorConfig {
    fn default() -> Self {
        Self {
            omega: 1.0,
            tol: 1e-9,
            max_iters: 10_000,
        }
    }
}

/// Outcome of an SOR run.
#[derive(Debug, Clone)]
pub struct SorResult {
    /// Solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` by successive over-relaxation.
pub fn sor(a: &Csr, b: &[f64], cfg: &SorConfig) -> Result<SorResult> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (n, n),
            op: "sor (matrix must be square)",
        });
    }
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    if !(cfg.omega > 0.0 && cfg.omega < 2.0) {
        return Err(SparseError::Numerical(format!(
            "SOR needs 0 < omega < 2, got {}",
            cfg.omega
        )));
    }
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0) {
        return Err(SparseError::ZeroDiagonal { row: i });
    }
    let mut x = vec![0.0; n];
    let mut delta_buf = vec![0.0; n];
    for it in 1..=cfg.max_iters {
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            let gs = acc / diag[i];
            let new = (1.0 - cfg.omega) * x[i] + cfg.omega * gs;
            delta_buf[i] = new - x[i];
            x[i] = new;
        }
        if norm2(&delta_buf) <= cfg.tol {
            return Ok(SorResult {
                x,
                iterations: it,
                converged: true,
            });
        }
    }
    Ok(SorResult {
        x,
        iterations: cfg.max_iters,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{jacobi, JacobiConfig};
    use bepi_sparse::Coo;

    fn dd_matrix(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 2] {
                let j = (i + d) % n;
                coo.push(i, j, -0.35).unwrap();
                off += 0.35;
            }
            coo.push(i, i, off + 0.6).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn gauss_seidel_solves_dd_system() {
        let a = dd_matrix(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = sor(&a, &b, &SorConfig::default()).unwrap();
        assert!(r.converged);
        for (g, w) in r.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-7);
        }
    }

    #[test]
    fn gauss_seidel_beats_jacobi() {
        let a = dd_matrix(60);
        let b: Vec<f64> = (0..60).map(|i| ((i + 1) as f64).recip()).collect();
        let gs = sor(&a, &b, &SorConfig::default()).unwrap();
        let jc = jacobi(&a, &b, &JacobiConfig::default()).unwrap();
        assert!(gs.converged && jc.converged);
        assert!(
            gs.iterations < jc.iterations,
            "GS {} vs Jacobi {}",
            gs.iterations,
            jc.iterations
        );
        for (x, y) in gs.x.iter().zip(&jc.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn over_relaxation_changes_iteration_count() {
        let a = dd_matrix(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.4).cos()).collect();
        let plain = sor(&a, &b, &SorConfig::default()).unwrap();
        let relaxed = sor(
            &a,
            &b,
            &SorConfig {
                omega: 1.2,
                ..SorConfig::default()
            },
        )
        .unwrap();
        assert!(plain.converged && relaxed.converged);
        for (x, y) in plain.x.iter().zip(&relaxed.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn invalid_omega_rejected() {
        let a = dd_matrix(5);
        for omega in [0.0, 2.0, -1.0] {
            let cfg = SorConfig {
                omega,
                ..SorConfig::default()
            };
            assert!(sor(&a, &[1.0; 5], &cfg).is_err());
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(sor(&coo.to_csr(), &[1.0, 1.0], &SorConfig::default()).is_err());
    }
}
