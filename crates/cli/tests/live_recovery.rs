//! Crash-recovery tests of the `bepi serve` daemon's WAL: SIGKILL the
//! process mid-stream, restart it on the same `--wal`, and require the
//! replayed state to serve byte-for-byte the same scores as a
//! from-scratch preprocess — plus the corruption path, which must fail
//! with a clean error, never an abort.

use bepi_core::dynamic::apply_updates;
use bepi_core::prelude::*;
use bepi_core::{classify, Classification, EdgeUpdate};
use bepi_graph::Graph;
use bepi_server::worker::render_query_body;
use bepi_server::{QueryKey, ResponseMode};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_bepi");
const N: usize = 40;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bepi_live_recovery_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A directed cycle over `N` nodes, written as an edge list and returned
/// as a graph (the oracle for expected scores).
fn write_cycle(dir: &Path) -> (PathBuf, Graph) {
    let edges: Vec<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
    let text: String = edges.iter().map(|(u, v)| format!("{u} {v}\n")).collect();
    let path = dir.join("edges.txt");
    std::fs::write(&path, text).unwrap();
    (path, Graph::from_edges(N, &edges).unwrap())
}

fn preprocess(edges: &Path, index: &Path) {
    let out = Command::new(BIN)
        .args([
            "preprocess",
            edges.to_str().unwrap(),
            index.to_str().unwrap(),
            "--embed-graph",
        ])
        .output()
        .expect("run bepi preprocess");
    assert!(
        out.status.success(),
        "preprocess failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A running daemon child whose stdin is held open (closing it triggers
/// graceful shutdown; `kill()` is the SIGKILL crash).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(index: &Path, wal: &Path) -> Self {
        Self::spawn_with(index, wal, &[])
    }

    fn spawn_with(index: &Path, wal: &Path, extra: &[&str]) -> Self {
        let mut args = vec![
            "serve",
            index.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--wal",
            wal.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let mut child = Command::new(BIN)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn bepi serve daemon");
        // The daemon prints the bound address only after WAL replay (and
        // any recovery re-preprocessing) has finished.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read daemon stdout");
            if let Some(rest) = line.split("http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address token")
                    .to_string();
            }
        };
        Daemon { child, addr }
    }

    fn request(&self, raw: &str) -> (u16, String) {
        let mut s = TcpStream::connect(&self.addr).expect("connect to daemon");
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("read response");
        let status = buf
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = buf
            .split_once("\r\n\r\n")
            .expect("header terminator")
            .1
            .to_string();
        (status, body)
    }

    fn get(&self, target: &str) -> (u16, String) {
        self.request(&format!(
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        ))
    }

    fn post_edges(&self, body: &str) -> (u16, String) {
        self.request(&format!(
            "POST /edges HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ))
    }

    fn post_rebuild(&self) -> (u16, String) {
        self.request(
            "POST /rebuild HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// SIGKILL mid-stream: updates acknowledged before the kill must survive
/// into the restarted daemon, and a torn tail appended by the "crash"
/// must be tolerated. The restarted daemon's scores must be byte-for-byte
/// what a from-scratch preprocess of the updated graph produces.
#[test]
fn sigkill_and_restart_replays_acknowledged_updates() {
    let dir = temp_dir("sigkill");
    let (edges_path, graph) = write_cycle(&dir);
    let index = dir.join("index.bepi");
    let wal = dir.join("updates.wal");
    preprocess(&edges_path, &index);

    let updates = [EdgeUpdate::Insert(0, 20), EdgeUpdate::Insert(7, 33)];
    let daemon = Daemon::spawn(&index, &wal);
    let (status, body) = daemon
        .post_edges("{\"op\":\"insert\",\"u\":0,\"v\":20}\n{\"op\":\"insert\",\"u\":7,\"v\":33}\n");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"accepted\":2"), "{body}");

    // Crash hard: SIGKILL, no flush, no graceful anything...
    let mut daemon = daemon;
    daemon.child.kill().expect("SIGKILL the daemon");
    daemon.child.wait().expect("reap");
    // ...and mangle the tail like a crash mid-append would: a frame
    // header that claims more bytes than follow.
    {
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&170u32.to_le_bytes()).unwrap();
        f.write_all(&[7u8; 12]).unwrap();
    }

    let daemon2 = Daemon::spawn(&index, &wal);
    let (status, served) = daemon2.get("/query?seed=0&top=10");
    assert_eq!(status, 200, "{served}");

    // Oracle: apply the acknowledged updates and rebuild through the same
    // path the daemon's replay takes — a numeric-only batch is refactored
    // under the checkpoint's frozen symbolic plan, a structural one pays a
    // full preprocess. Preprocessing is deterministic, so either way the
    // equality is exact.
    let expected_graph = apply_updates(&graph, &updates).unwrap();
    let base = BePi::preprocess(&graph, &BePiConfig::default()).unwrap();
    let solver = match classify(&base.symbolic_plan(), &graph, &expected_graph, &[0, 7]) {
        Classification::NumericOnly(dirty) => base.refactor(&expected_graph, &dirty).unwrap(),
        Classification::Structural(_) => {
            BePi::preprocess(&expected_graph, &BePiConfig::default()).unwrap()
        }
    };
    let scores = solver.query(0).unwrap();
    let expected = render_query_body(
        QueryKey {
            seed: 0,
            top_k: 10,
            version: 1,
            mode: ResponseMode::Exact,
        },
        &scores,
    );
    assert_eq!(served, expected, "replayed state must match byte-for-byte");

    drop(daemon2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A numeric-only rebuild's v6 checkpoint must round-trip the symbolic
/// plan: the checkpointed index was refactored under the *original*
/// preprocess's frozen plan, and a daemon restarted on that checkpoint
/// (WAL already compacted) must serve it byte-for-byte — proving the
/// plan survived the v6 sections and the restart paid no fresh
/// reordering that would have produced different bytes.
#[test]
fn numeric_checkpoint_round_trips_symbolic_plan_through_v6() {
    let dir = temp_dir("plan_roundtrip");
    let (edges_path, graph) = write_cycle(&dir);
    let index = dir.join("index.bepi");
    let wal = dir.join("updates.wal");
    preprocess(&edges_path, &index);

    // The daemon's frozen plan is the one the on-disk index carries —
    // identical to a deterministic in-process preprocess of the same
    // graph.
    let base = BePi::preprocess(&graph, &BePiConfig::default()).unwrap();
    let plan = base.symbolic_plan();

    let updates = [EdgeUpdate::Insert(0, 20), EdgeUpdate::Insert(7, 33)];
    let expected_graph = apply_updates(&graph, &updates).unwrap();
    // This test is about the *numeric* path; fail loudly if the batch
    // ever starts classifying structural.
    let dirty = match classify(&plan, &graph, &expected_graph, &[0, 7]) {
        Classification::NumericOnly(dirty) => dirty,
        Classification::Structural(why) => panic!("batch must stay numeric-only: {why}"),
    };

    // First daemon: v6 (mmap) checkpoints; rebuild takes the numeric
    // path and checkpoints the refactored index over `index.bepi`.
    {
        let daemon = Daemon::spawn_with(&index, &wal, &["--mmap"]);
        let (status, body) = daemon.post_edges(
            "{\"op\":\"insert\",\"u\":0,\"v\":20}\n{\"op\":\"insert\",\"u\":7,\"v\":33}\n",
        );
        assert_eq!(status, 200, "{body}");
        let (status, body) = daemon.post_rebuild();
        assert_eq!(status, 200, "{body}");
        let (status, version) = daemon.get("/version");
        assert_eq!(status, 200, "{version}");
        assert!(
            version.contains("\"rebuild_kind\":\"numeric\""),
            "{version}"
        );
        assert!(
            version.contains("\"rebuild_trigger\":\"explicit\""),
            "{version}"
        );
    }

    // Restart on the checkpoint. The WAL was compacted when the
    // checkpoint became durable, so there is nothing to replay: what is
    // served IS the persisted refactored index.
    let daemon2 = Daemon::spawn_with(&index, &wal, &["--mmap"]);
    let (status, served) = daemon2.get("/query?seed=0&top=10");
    assert_eq!(status, 200, "{served}");

    // Oracle: the refactor is bit-identical to a plan-frozen numeric
    // re-factorization, NOT to a fresh preprocess (whose SlashBurn would
    // be free to reorder) — byte equality here is exactly the plan
    // round-tripping through the v6 sections.
    let refactored = base.refactor(&expected_graph, &dirty).unwrap();
    let scores = refactored.query(0).unwrap();
    let expected = render_query_body(
        QueryKey {
            seed: 0,
            top_k: 10,
            version: 1,
            mode: ResponseMode::Exact,
        },
        &scores,
    );
    assert_eq!(
        served, expected,
        "restart must serve the plan-frozen refactored index byte-for-byte"
    );

    drop(daemon2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A WAL whose complete final segment has a corrupted CRC trailer is
/// genuine corruption: the daemon must refuse to start with a clean
/// error (non-zero exit, no abort/signal) that names the checksum.
#[test]
fn corrupted_wal_trailer_fails_cleanly_on_startup() {
    let dir = temp_dir("corrupt");
    let (edges_path, _) = write_cycle(&dir);
    let index = dir.join("index.bepi");
    let wal = dir.join("updates.wal");
    preprocess(&edges_path, &index);

    // Produce a WAL with one complete, valid segment...
    {
        let daemon = Daemon::spawn(&index, &wal);
        let (status, body) = daemon.post_edges("{\"op\":\"insert\",\"u\":1,\"v\":9}\n");
        assert_eq!(status, 200, "{body}");
    }
    // ...then flip a bit in its CRC trailer (the last 4 bytes).
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let out = Command::new(BIN)
        .args([
            "serve",
            index.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--wal",
            wal.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .output()
        .expect("run daemon against corrupt WAL");
    assert!(!out.status.success(), "corrupt WAL must fail startup");
    assert!(
        out.status.code().is_some(),
        "must exit with an error code, not die on a signal/abort"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum mismatch"),
        "error must name the corruption, got: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
