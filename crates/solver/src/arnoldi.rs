//! The Arnoldi process and Ritz-value extraction.
//!
//! Arnoldi builds an orthonormal basis `V` of the Krylov subspace of an
//! operator `A` and the Hessenberg matrix `H = Vᵀ A V`; the eigenvalues of
//! `H` (Ritz values) approximate `A`'s extremal eigenvalues. Figure 7 of
//! the paper uses exactly this to compare the spectra of `S` and
//! `M^{-1}S`.

use crate::eig::{hessenberg_eigenvalues, sort_by_modulus_desc, Complex};
use crate::linop::LinOp;
use bepi_sparse::vecops::{axpy, dot, norm2};
use bepi_sparse::Dense;

/// Result of an Arnoldi run.
#[derive(Debug, Clone)]
pub struct ArnoldiResult {
    /// The `(k+1) × k` Hessenberg matrix (only the leading `k × k` part is
    /// used for Ritz values); `k ≤ requested m` on early breakdown.
    pub hessenberg: Dense,
    /// Orthonormal Krylov basis vectors (k+1 of them, each length n).
    pub basis: Vec<Vec<f64>>,
    /// Steps actually performed.
    pub steps: usize,
}

/// Runs `m` steps of Arnoldi with modified Gram–Schmidt starting from `v0`
/// (need not be normalized; must be non-zero).
pub fn arnoldi<A: LinOp>(a: &A, v0: &[f64], m: usize) -> ArnoldiResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "arnoldi needs a square operator");
    assert_eq!(v0.len(), n, "starting vector has wrong length");
    let m = m.min(n);
    let mut v = v0.to_vec();
    let nrm = norm2(&v);
    assert!(nrm > 0.0, "starting vector must be non-zero");
    for x in &mut v {
        *x /= nrm;
    }
    let mut basis = vec![v];
    let mut h = Dense::zeros(m + 1, m);
    let mut w = vec![0.0; n];
    let mut steps = 0usize;
    for j in 0..m {
        a.apply(&basis[j], &mut w);
        for (i, vi) in basis.iter().enumerate().take(j + 1) {
            let hij = dot(&w, vi);
            h[(i, j)] = hij;
            axpy(-hij, vi, &mut w);
        }
        let hnext = norm2(&w);
        h[(j + 1, j)] = hnext;
        steps = j + 1;
        if hnext <= 1e-14 {
            break; // invariant subspace found (happy breakdown)
        }
        let mut next = w.clone();
        for x in &mut next {
            *x /= hnext;
        }
        basis.push(next);
    }
    ArnoldiResult {
        hessenberg: h,
        basis,
        steps,
    }
}

/// Computes the top-`k` Ritz values (by modulus) of an operator from an
/// `m`-step Arnoldi run started at `v0`.
pub fn ritz_values<A: LinOp>(a: &A, v0: &[f64], m: usize, k: usize) -> Vec<Complex> {
    let res = arnoldi(a, v0, m);
    let s = res.steps;
    let mut hm = Dense::zeros(s, s);
    for i in 0..s {
        for j in 0..s {
            hm[(i, j)] = res.hessenberg[(i, j)];
        }
    }
    let mut eigs = hessenberg_eigenvalues(&hm);
    sort_by_modulus_desc(&mut eigs);
    eigs.truncate(k);
    eigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::Coo;

    #[test]
    fn basis_is_orthonormal() {
        let n = 20;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, (i + 1) as f64).unwrap();
            coo.push(i, (i + 1) % n, 0.5).unwrap();
        }
        let a = coo.to_csr();
        let res = arnoldi(&a, &vec![1.0; n], 8);
        assert_eq!(res.steps, 8);
        for (i, vi) in res.basis.iter().enumerate() {
            for (j, vj) in res.basis.iter().enumerate() {
                let d = dot(vi, vj);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "<v{i}, v{j}> = {d}");
            }
        }
    }

    #[test]
    fn arnoldi_relation_holds() {
        // A V_k = V_{k+1} H̄_k, checked column-wise.
        let n = 15;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 2.0 + (i % 3) as f64).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, 0.5).unwrap();
            }
        }
        let a = coo.to_csr();
        let m = 6;
        let res = arnoldi(&a, &vec![1.0; n], m);
        for j in 0..res.steps {
            let avj = a.mul_vec(&res.basis[j]).unwrap();
            let mut recon = vec![0.0; n];
            for i in 0..=j + 1 {
                axpy(res.hessenberg[(i, j)], &res.basis[i], &mut recon);
            }
            for (x, y) in avj.iter().zip(&recon) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn happy_breakdown_on_low_rank_invariant_subspace() {
        // A = e0 e0ᵀ scaled: starting from e0, Krylov space is 1-D.
        let mut coo = Coo::new(5, 5).unwrap();
        coo.push(0, 0, 3.0).unwrap();
        let a = coo.to_csr();
        let mut v0 = vec![0.0; 5];
        v0[0] = 1.0;
        let res = arnoldi(&a, &v0, 4);
        assert_eq!(res.steps, 1);
        assert!((res.hessenberg[(0, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ritz_values_approximate_dominant_eigenvalue() {
        // Diagonal operator: dominant eigenvalue 10 is found quickly.
        let n = 30;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let v = if i == 7 {
                10.0
            } else {
                1.0 + (i % 4) as f64 * 0.5
            };
            coo.push(i, i, v).unwrap();
        }
        let a = coo.to_csr();
        let rv = ritz_values(&a, &vec![1.0; n], 20, 1);
        assert!((rv[0].0 - 10.0).abs() < 1e-6, "{:?}", rv[0]);
        assert!(rv[0].1.abs() < 1e-8);
    }

    #[test]
    fn full_dimension_arnoldi_gets_exact_spectrum() {
        let n = 6;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, (i + 1) as f64).unwrap();
            coo.push(i, (i + 2) % n, 0.3).unwrap();
        }
        let a = coo.to_csr();
        let rv = ritz_values(&a, &vec![1.0; n], n, n);
        let dense = crate::eig::dense_eigenvalues(&a.to_dense());
        let sum_rv: f64 = rv.iter().map(|e| e.0).sum();
        let sum_de: f64 = dense.iter().map(|e| e.0).sum();
        assert!((sum_rv - sum_de).abs() < 1e-7, "{sum_rv} vs {sum_de}");
    }
}
