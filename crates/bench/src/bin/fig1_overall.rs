//! Regenerates the paper artifact; see `bepi_bench::experiments::fig1`.

fn main() {
    print!("{}", bepi_bench::experiments::fig1::run());
}
