//! Dense vector kernels shared by the iterative solvers.
//!
//! GMRES, power iteration, and the accuracy experiments all operate on
//! dense vectors; these free functions keep those hot loops allocation-free.

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `||a - b||_2` without allocating the difference.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Normalizes `x` to unit L2 norm in place; returns the original norm.
/// A zero vector is left unchanged and 0.0 is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Indices of the `k` largest entries, descending, ties broken by index.
///
/// This is the "top-k ranking" operation of Figure 2: turn an RWR score
/// vector into a ranked node list.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, -2.0];
        let b = [3.0, 0.0, 1.0];
        assert_eq!(dot(&a, &b), 1.0);
        assert_eq!(norm2(&a), 3.0);
        assert_eq!(norm1(&a), 5.0);
        assert_eq!(norm_inf(&a), 2.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn dist2_matches_manual() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(dist2(&a, &b), 5.0);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        let mut z = [0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let scores = [0.1, 0.5, 0.5, 0.9, 0.0];
        assert_eq!(top_k_indices(&scores, 3), vec![3, 1, 2]);
        assert_eq!(top_k_indices(&scores, 10), vec![3, 1, 2, 0, 4]);
        assert_eq!(top_k_indices(&scores, 0), Vec::<usize>::new());
    }
}
