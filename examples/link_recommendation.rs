//! Link recommendation on a social-network-like graph.
//!
//! One of the motivating applications of the paper's introduction: RWR
//! scores rank non-neighbors of a user; the top-ranked ones are friend /
//! link recommendations. This example preprocesses a power-law graph once
//! and serves recommendations for several users from the same
//! preprocessed data — the exact usage pattern preprocessing methods
//! exist for.
//!
//! Run with: `cargo run --release -p bepi-core --example link_recommendation`

use bepi_core::prelude::*;
use bepi_graph::generators::{self, RmatParams};
use std::collections::HashSet;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Slashdot-scale synthetic social graph.
    let graph = generators::rmat(12, 40_000, RmatParams::default(), 2024)?;
    println!(
        "social graph: {} users, {} follow edges",
        graph.n(),
        graph.m()
    );

    let t0 = Instant::now();
    let solver = BePi::preprocess(&graph, &BePiConfig::default())?;
    println!("one-time preprocessing: {:?}", t0.elapsed());

    // Recommend for the five highest-degree active users.
    let degs = graph.total_degrees();
    let mut users: Vec<usize> = (0..graph.n())
        .filter(|&u| graph.out_degree(u) > 0)
        .collect();
    users.sort_by_key(|&u| std::cmp::Reverse(degs[u]));
    let t1 = Instant::now();
    for &user in users.iter().take(5) {
        let scores = solver.query(user)?;
        let neighbors: HashSet<usize> = graph.out_neighbors(user).collect();
        // Top-5 non-neighbors, excluding the user itself.
        let recs: Vec<usize> = scores
            .top_k(graph.n())
            .into_iter()
            .filter(|&v| v != user && !neighbors.contains(&v))
            .take(5)
            .collect();
        println!(
            "user {user:>5} (degree {:>4}) → recommend {:?}  [{} GMRES iters]",
            degs[user], recs, scores.iterations
        );
    }
    println!(
        "5 queries in {:?} from {} of preprocessed data",
        t1.elapsed(),
        bepi_sparse::mem::format_bytes(solver.preprocessed_bytes())
    );
    Ok(())
}
