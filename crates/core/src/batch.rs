//! Batch query execution, serial and multi-threaded.
//!
//! The paper's target workload is many queries against one preprocessed
//! instance ("especially when they should serve many query nodes",
//! Section 1). BePI's query phase is read-only over the preprocessed
//! matrices, so queries parallelize embarrassingly across threads; this
//! module provides the fan-out on top of `crossbeam`'s scoped threads.

use crate::bepi::BePi;
use crate::rwr::{check_seed, RwrScores, RwrSolver};
use bepi_sparse::{Result, SparseError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

impl BePi {
    /// Answers a batch of queries serially, in input order.
    pub fn query_batch(&self, seeds: &[usize]) -> Result<Vec<RwrScores>> {
        seeds.iter().map(|&s| self.query_with_stats(s)).collect()
    }

    /// Answers a batch of queries on `threads` worker threads, preserving
    /// input order. Results are identical to [`BePi::query_batch`] —
    /// every query runs the same deterministic solve on shared read-only
    /// data.
    ///
    /// On failure the error is deterministic regardless of thread timing:
    /// seeds are validated up front (so an out-of-range seed reports the
    /// first offender in input order), and if a solve fails mid-batch the
    /// lowest-indexed failure wins. A failure also cancels the remaining
    /// work — workers check a shared flag between queries — so a batch
    /// with an early error does not pay for the rest of the batch.
    ///
    /// Each worker runs its solves with the kernel thread count pinned to
    /// one ([`bepi_par::with_kernel_threads`]): the batch fan-out *is*
    /// the parallelism, and letting every worker also fan out the solver
    /// kernels oversubscribes the machine (`threads × kernel-threads`
    /// runnable threads — the BENCH_PR5 batch slowdown). Pinning changes
    /// nothing about the results: the kernels are bit-identical at any
    /// thread count by construction.
    pub fn query_batch_parallel(&self, seeds: &[usize], threads: usize) -> Result<Vec<RwrScores>> {
        let n = self.node_count();
        for &s in seeds {
            check_seed(s, n)?;
        }
        if threads <= 1 || seeds.len() <= 1 {
            return self.query_batch(seeds);
        }
        let threads = threads.min(seeds.len());
        let mut results: Vec<Option<RwrScores>> = Vec::new();
        results.resize_with(seeds.len(), || None);
        let chunk = seeds.len().div_ceil(threads);
        let cancelled = AtomicBool::new(false);
        // Lowest-indexed failure across all workers; the index makes the
        // winner deterministic even when several chunks fail at once.
        let first_error: Mutex<Option<(usize, SparseError)>> = Mutex::new(None);
        crossbeam::thread::scope(|scope| {
            for (chunk_no, (seed_chunk, result_chunk)) in seeds
                .chunks(chunk)
                .zip(results.chunks_mut(chunk))
                .enumerate()
            {
                let cancelled = &cancelled;
                let first_error = &first_error;
                let base = chunk_no * chunk;
                scope.spawn(move |_| {
                    // Single-pool guard: this worker's kernels run serial.
                    bepi_par::with_kernel_threads(1, || {
                        for (offset, (s, slot)) in
                            seed_chunk.iter().zip(result_chunk.iter_mut()).enumerate()
                        {
                            if cancelled.load(Ordering::Relaxed) {
                                return;
                            }
                            match self.query_with_stats(*s) {
                                Ok(scores) => *slot = Some(scores),
                                Err(e) => {
                                    let idx = base + offset;
                                    let mut guard =
                                        first_error.lock().unwrap_or_else(|p| p.into_inner());
                                    if guard.as_ref().map_or(true, |(i, _)| idx < *i) {
                                        *guard = Some((idx, e));
                                    }
                                    cancelled.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                });
            }
        })
        .map_err(|_| SparseError::Numerical("query worker thread panicked".into()))?;
        if let Some((_, e)) = first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        results
            .into_iter()
            .map(|r| Ok(r.expect("no error recorded, so every slot was filled")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bepi::BePiConfig;
    use crate::rwr::RwrSolver;
    use bepi_graph::generators;

    #[test]
    fn serial_batch_matches_individual_queries() {
        let g = generators::erdos_renyi(150, 700, 3).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let seeds = [0usize, 5, 149, 5]; // duplicates allowed
        let batch = solver.query_batch(&seeds).unwrap();
        assert_eq!(batch.len(), 4);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(batch[i].scores, solver.query(s).unwrap().scores);
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 71).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let seeds: Vec<usize> = (0..24).map(|i| (i * 17) % g.n()).collect();
        let serial = solver.query_batch(&seeds).unwrap();
        for threads in [2usize, 4, 7] {
            let parallel = solver.query_batch_parallel(&seeds, threads).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                assert_eq!(a.scores, b.scores, "threads = {threads}");
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn parallel_batch_aggregates_into_shared_telemetry() {
        let g = generators::erdos_renyi(120, 600, 9).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let seeds: Vec<usize> = (0..16).map(|i| (i * 7) % g.n()).collect();
        let before = bepi_obs::telemetry::gmres_iterations().count();
        let results = solver.query_batch_parallel(&seeds, 4).unwrap();
        let after = bepi_obs::telemetry::gmres_iterations().count();
        // Every batch query lands in the process-global registry the serve
        // path reads; other tests in this binary may also record, so the
        // delta is a lower bound.
        assert!(
            after >= before + seeds.len() as u64,
            "expected ≥ {} new solves, got {} → {}",
            seeds.len(),
            before,
            after
        );
        for r in &results {
            assert!(r.iterations > 0);
            assert!(r.residual.is_finite());
        }
    }

    #[test]
    fn parallel_with_one_thread_or_one_seed_degenerates() {
        let g = generators::cycle(20);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let one = solver.query_batch_parallel(&[3], 8).unwrap();
        assert_eq!(one.len(), 1);
        let single_thread = solver.query_batch_parallel(&[1, 2, 3], 1).unwrap();
        assert_eq!(single_thread.len(), 3);
    }

    #[test]
    fn bad_seed_in_batch_is_an_error() {
        let g = generators::cycle(10);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(solver.query_batch(&[1, 99]).is_err());
        assert!(solver.query_batch_parallel(&[1, 99, 2, 3], 2).is_err());
    }

    #[test]
    fn out_of_range_seed_error_is_deterministic_by_input_order() {
        let g = generators::erdos_renyi(50, 200, 9).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // Two invalid seeds buried in otherwise valid work, placed so they
        // land in different worker chunks. The reported error must always
        // name the first offender in input order (seed 77 at index 2), no
        // matter how threads interleave.
        let seeds = [0usize, 1, 77, 3, 4, 5, 6, 88, 8, 9, 10, 11];
        let expected = solver
            .query_batch_parallel(&seeds, 4)
            .unwrap_err()
            .to_string();
        assert!(
            expected.contains("77"),
            "error should name seed 77: {expected}"
        );
        for _ in 0..20 {
            for threads in [2usize, 3, 4, 6] {
                let err = solver.query_batch_parallel(&seeds, threads).unwrap_err();
                assert_eq!(err.to_string(), expected, "threads = {threads}");
            }
        }
        // And the serial form agrees.
        assert_eq!(
            solver.query_batch(&seeds).unwrap_err().to_string(),
            expected
        );
    }

    #[test]
    fn empty_batch() {
        let g = generators::cycle(5);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(solver.query_batch(&[]).unwrap().is_empty());
        assert!(solver.query_batch_parallel(&[], 4).unwrap().is_empty());
    }
}
