//! Regenerates the paper artifact; see `bepi_bench::experiments::fig4`.

fn main() {
    print!("{}", bepi_bench::experiments::fig4::run());
}
