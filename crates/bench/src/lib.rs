//! # bepi-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! BePI paper's evaluation (Section 4 and Appendices I–K) on the
//! synthetic dataset suite.
//!
//! Each experiment lives in [`experiments`] as a library function
//! returning a printable report; the `src/bin/*` binaries are thin
//! wrappers, and `bin/run_all` executes everything and collects output
//! under `experiments/` for `EXPERIMENTS.md`.
//!
//! Environment knobs:
//! * `BEPI_SEEDS` — query seeds per measurement (default 30, as in the
//!   paper).
//! * `BEPI_SUITE_MAX` — restrict the dataset suite to its first N members
//!   (for quick runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Experiment tables pass function-pointer tuples around; naming each
// composite type would add indirection without clarity.
#![allow(clippy::type_complexity)]

pub mod experiments;
pub mod fit;
pub mod harness;
pub mod perf;
pub mod rebuild;
pub mod route;
pub mod table;
pub mod trace;

pub use harness::{query_seeds, suite, Status};
pub use table::Table;
