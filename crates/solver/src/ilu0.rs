//! Incomplete LU factorization with zero fill — ILU(0).
//!
//! BePI's preconditioner (Section 3.5): `S ≈ L̂2 Û2` where the factors
//! keep exactly the sparsity pattern of `S`'s lower/upper parts, so "the
//! storage cost of L̂2 and Û2 is the same as that of S". Applying the
//! preconditioner is one forward and one backward substitution
//! (Appendix B), with the same complexity as an SpMV.

use crate::linop::Preconditioner;
use bepi_sparse::{Csr, MemBytes, Result, SparseError, Storage};

/// An ILU(0) factorization stored in the pattern of the input matrix.
///
/// ```
/// use bepi_solver::{Ilu0, Preconditioner};
/// use bepi_sparse::Coo;
///
/// // A triangular matrix has an *exact* ILU(0) factorization, so
/// // applying the preconditioner solves the system outright.
/// let mut coo = Coo::new(2, 2).unwrap();
/// coo.push(0, 0, 2.0).unwrap();
/// coo.push(1, 0, 1.0).unwrap();
/// coo.push(1, 1, 4.0).unwrap();
/// let a = coo.to_csr();
///
/// let ilu = Ilu0::factor(&a).unwrap();
/// let mut x = vec![0.0; 2];
/// ilu.apply(&[2.0, 5.0], &mut x); // solves L U x = b = A x
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Ilu0 {
    /// Combined factors in CSR: entries left of the diagonal form the
    /// strictly-lower part of `L̂` (unit diagonal implicit), the diagonal
    /// and right of it form `Û`.
    factors: Csr,
    /// Position of the diagonal entry within each row's value slice.
    diag_pos: Storage<usize>,
}

impl Ilu0 {
    /// Computes the ILU(0) factorization.
    ///
    /// # Errors
    /// [`SparseError::ZeroDiagonal`] if some diagonal entry is absent from
    /// the pattern or becomes zero during elimination. (Never happens for
    /// the diagonally dominant systems BePI produces.)
    pub fn factor(a: &Csr) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: a.shape(),
                op: "Ilu0::factor (matrix must be square)",
            });
        }
        let mut factors = a.clone();
        // Locate diagonals first.
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            let (cols, _) = factors.row(i);
            match cols.binary_search(&(i as u32)) {
                Ok(p) => diag_pos[i] = p,
                Err(_) => return Err(SparseError::ZeroDiagonal { row: i }),
            }
        }

        // IKJ elimination restricted to the original pattern. We work on
        // the raw arrays to allow updating row i while reading row k < i.
        let indptr = factors.indptr().to_vec();
        let indices = factors.indices().to_vec();
        for i in 0..n {
            let (ri_start, ri_end) = (indptr[i], indptr[i + 1]);
            let di = ri_start + diag_pos[i];
            for ki in ri_start..di {
                let k = indices[ki] as usize;
                let dk = indptr[k] + diag_pos[k];
                let akk = factors.values()[dk];
                if akk == 0.0 {
                    return Err(SparseError::ZeroDiagonal { row: k });
                }
                let lik = factors.values()[ki] / akk;
                factors.values_mut()[ki] = lik;
                if lik == 0.0 {
                    continue;
                }
                // Merge: subtract lik * U(k, j) from A(i, j) for j > k,
                // only where (i, j) exists. Both rows sorted by column.
                let mut p = ki + 1; // positions in row i after column k
                let mut q = dk + 1; // positions in row k after the diagonal
                let rk_end = indptr[k + 1];
                while p < ri_end && q < rk_end {
                    let ci = indices[p];
                    let ck = indices[q];
                    match ci.cmp(&ck) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            let ukj = factors.values()[q];
                            factors.values_mut()[p] -= lik * ukj;
                            p += 1;
                            q += 1;
                        }
                    }
                }
            }
            if factors.values()[di] == 0.0 {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
        }
        Ok(Self {
            factors,
            diag_pos: diag_pos.into(),
        })
    }

    /// Reassembles a factorization from previously computed parts — the
    /// load path for persisted indexes, which store the factors so the
    /// `O(nnz)` elimination of [`Ilu0::factor`] is never re-run at open
    /// time. Only `O(n)` shape checks are performed; the entries are
    /// trusted because persisted sections are covered by CRCs. Debug
    /// builds re-verify every diagonal position.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if `factors` is not square or
    /// `diag_pos` does not have one entry per row.
    pub fn from_parts(factors: Csr, diag_pos: Storage<usize>) -> Result<Self> {
        if factors.ncols() != factors.nrows() {
            return Err(SparseError::ShapeMismatch {
                left: factors.shape(),
                right: factors.shape(),
                op: "Ilu0::from_parts (matrix must be square)",
            });
        }
        if diag_pos.len() != factors.nrows() {
            return Err(SparseError::VectorLength {
                expected: factors.nrows(),
                actual: diag_pos.len(),
            });
        }
        debug_assert!(
            (0..factors.nrows()).all(|i| {
                let (cols, _) = factors.row(i);
                diag_pos[i] < cols.len() && cols[diag_pos[i]] == i as u32
            }),
            "diag_pos does not point at the diagonal entries"
        );
        Ok(Self { factors, diag_pos })
    }

    /// Value-only refresh: recomputes the factorization of `a`, which
    /// must have *exactly* the sparsity pattern of the original input —
    /// the numeric half of the analyze/factor split, for incremental
    /// rebuilds where edge weights moved but the Schur pattern did not.
    ///
    /// The elimination is deterministic, so the result is bit-identical
    /// to `Ilu0::factor(a)`; the pattern check is what callers rely on
    /// to detect that a batch changed the Schur structure and fall back
    /// to a fresh factorization.
    ///
    /// # Errors
    /// [`SparseError::Parse`] if `a`'s pattern differs from the pattern
    /// these factors were built on; [`SparseError::ZeroDiagonal`] as in
    /// [`Ilu0::factor`].
    pub fn refresh_values(&self, a: &Csr) -> Result<Self> {
        if a.shape() != self.factors.shape()
            || a.indptr() != self.factors.indptr()
            || a.indices() != self.factors.indices()
        {
            return Err(SparseError::Parse(
                "ILU(0) refresh requires an unchanged sparsity pattern".into(),
            ));
        }
        Self::factor(a)
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.factors.nrows()
    }

    /// The combined-factor matrix (pattern identical to the input).
    pub fn factors(&self) -> &Csr {
        &self.factors
    }

    /// Diagonal offsets within each row of [`Ilu0::factors`].
    pub fn diag_pos(&self) -> &[usize] {
        &self.diag_pos
    }

    /// Bytes of heap memory held by the factorization.
    pub fn heap_bytes(&self) -> usize {
        self.factors.heap_bytes() + self.diag_pos.heap_bytes()
    }

    /// Bytes served zero-copy from a mapped index file.
    pub fn mapped_bytes(&self) -> usize {
        self.factors.mapped_bytes() + self.diag_pos.mapped_bytes()
    }

    /// Solves `L̂ Û z = r` by forward then backward substitution into `z`.
    pub fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n());
        debug_assert_eq!(z.len(), self.n());
        let n = self.n();
        let indptr = self.factors.indptr();
        let indices = self.factors.indices();
        let values = self.factors.values();
        // Forward: L̂ y = r (unit diagonal).
        for i in 0..n {
            let (s, d) = (indptr[i], indptr[i] + self.diag_pos[i]);
            let mut acc = r[i];
            for p in s..d {
                acc -= values[p] * z[indices[p] as usize];
            }
            z[i] = acc;
        }
        // Backward: Û z = y.
        for i in (0..n).rev() {
            let (d, e) = (indptr[i] + self.diag_pos[i], indptr[i + 1]);
            let mut acc = z[i];
            for p in d + 1..e {
                acc -= values[p] * z[indices[p] as usize];
            }
            z[i] = acc / values[d];
        }
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve_into(r, z);
    }
}

impl MemBytes for Ilu0 {
    fn mem_bytes(&self) -> usize {
        self.factors.mem_bytes() + self.diag_pos.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::Coo;

    fn dd_matrix(n: usize) -> Csr {
        // Deterministic strictly diagonally dominant sparse matrix.
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 3] {
                let j = (i + d) % n;
                if j != i {
                    let v = 0.3 + ((i * 7 + j) % 5) as f64 * 0.1;
                    coo.push(i, j, -v).unwrap();
                    off += v;
                }
            }
            coo.push(i, i, off + 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn pattern_is_preserved() {
        let a = dd_matrix(20);
        let ilu = Ilu0::factor(&a).unwrap();
        assert_eq!(ilu.factors().nnz(), a.nnz());
        assert_eq!(ilu.factors().indices(), a.indices());
        assert!(ilu.mem_bytes() > 0);
    }

    #[test]
    fn exact_on_full_lu_pattern() {
        // For a tridiagonal matrix ILU(0) has no dropped fill, so
        // L̂Û = A exactly and the "preconditioner solve" is a direct solve.
        let n = 30;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.5).unwrap();
            }
        }
        let a = coo.to_csr();
        let ilu = Ilu0::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut z = vec![0.0; n];
        ilu.solve_into(&b, &mut z);
        for (g, w) in z.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn approximate_inverse_reduces_residual() {
        let a = dd_matrix(40);
        let ilu = Ilu0::factor(&a).unwrap();
        let b: Vec<f64> = (0..40).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let mut z = vec![0.0; 40];
        ilu.solve_into(&b, &mut z);
        // ‖A z − b‖ should be far smaller than ‖b‖ for a decent ILU.
        let az = a.mul_vec(&z).unwrap();
        let res: f64 = az
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(res < 0.5 * nb, "residual {res} vs ‖b‖ {nb}");
    }

    #[test]
    fn refresh_values_is_bit_identical_to_fresh_factor() {
        let a = dd_matrix(25);
        let ilu = Ilu0::factor(&a).unwrap();
        // Same pattern, different values.
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 1.25;
        }
        let refreshed = ilu.refresh_values(&b).unwrap();
        let fresh = Ilu0::factor(&b).unwrap();
        assert_eq!(refreshed.factors().indices(), fresh.factors().indices());
        assert_eq!(refreshed.factors().values(), fresh.factors().values());
        assert_eq!(refreshed.diag_pos(), fresh.diag_pos());
    }

    #[test]
    fn refresh_values_rejects_pattern_change() {
        let a = dd_matrix(12);
        let ilu = Ilu0::factor(&a).unwrap();
        let other = dd_matrix(13);
        assert!(matches!(
            ilu.refresh_values(&other),
            Err(SparseError::Parse(_))
        ));
        // Same shape, different pattern.
        let shifted = {
            let mut coo = Coo::new(12, 12).unwrap();
            for (r, c, v) in a.iter() {
                coo.push(r, (c + 1) % 12, v).unwrap();
            }
            for i in 0..12 {
                if a.get(i, i) == 0.0 {
                    coo.push(i, i, 5.0).unwrap();
                }
            }
            coo.to_csr()
        };
        assert!(ilu.refresh_values(&shifted).is_err());
    }

    #[test]
    fn missing_diagonal_rejected() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(matches!(
            Ilu0::factor(&coo.to_csr()),
            Err(SparseError::ZeroDiagonal { .. })
        ));
    }

    #[test]
    fn identity_preconditioner_is_exact() {
        let a = Csr::identity(4);
        let ilu = Ilu0::factor(&a).unwrap();
        let r = [1.0, 2.0, 3.0, 4.0];
        let mut z = [0.0; 4];
        ilu.apply(&r, &mut z);
        assert_eq!(z, r);
    }
}
