//! The scatter-gather front tier.
//!
//! The router accepts plain `bepi-server`-style HTTP and forwards
//! `/query` to shard daemons, placing each seed on its ring-preferred
//! shard and failing over deterministically when that shard is down:
//!
//! * **Bounded retry with backoff** — a failed attempt (transport
//!   error, 5xx) is retried on the next sibling in the seed's ring
//!   order, up to `retries` extra attempts, with a linear backoff
//!   between sequential attempts.
//! * **Hedging** — when the primary has not answered within `hedge_ms`,
//!   a duplicate request is launched at the first sibling and whichever
//!   answers first wins; the loser is abandoned (its worker thread
//!   drains the response into the connection pool or drops it).
//! * **Scatter-gather `/batch`** — `?seeds=a,b,c` fans out across the
//!   fleet grouped by primary shard, each group multiplexed over that
//!   shard's persistent connections, and the per-seed bodies are
//!   gathered *in seed order*, byte-identical to what a single daemon
//!   would have produced; `&merge=1` instead merges the per-seed top-k
//!   lists into one fleet-wide ranking (score text kept verbatim).
//!
//! Responses are proxied, not re-rendered: status, body, and the
//! lineage headers (`X-Graph-Version`, `X-Approx`, `X-Cache`,
//! `X-Shard`) pass through untouched, which is what makes router
//! answers bit-comparable to a single daemon's.

use crate::client::{AttemptTiming, HttpResponse};
use crate::metrics::{merge_expositions, render, RouteMetrics};
use crate::ring::SeedRing;
use crate::shard::{quorum_version, ShardState};
use crate::supervisor::Supervisor;
use crate::trace::{AttemptEntry, AttemptKind, AttemptLog, AttemptOutcome};
use bepi_obs::trace::{clock_us, RequestId, TraceEvent, TraceExporter, ROUTER_PID};
use bepi_server::http::{self, ParseError, Request};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (port 0 picks an ephemeral port).
    pub listen: String,
    /// Hedge delay: a `/query` unanswered after this long launches a
    /// duplicate at the next sibling. `0` disables hedging.
    pub hedge_ms: u64,
    /// Extra attempts after the first (so `retries = 2` allows three
    /// shard attempts in total).
    pub retries: u32,
    /// Base backoff between sequential retry attempts; attempt `n`
    /// sleeps `n × backoff_ms` first.
    pub backoff_ms: u64,
    /// Health-probe interval.
    pub health_interval: Duration,
    /// Per-attempt I/O timeout against a shard.
    pub shard_timeout: Duration,
    /// Requests whose end-to-end latency meets this threshold land (one
    /// record per shard attempt) in the router slowlog
    /// (`GET /debug/slow`). `Duration::ZERO` records every request.
    pub slow_query: Duration,
    /// Entries retained by the router slowlog ring.
    pub slow_log_entries: usize,
    /// Entries retained by the traced-request ring (`GET /debug/trace`).
    pub trace_entries: usize,
    /// When set, every `?trace=1` request is appended to this file as
    /// Chrome trace-event JSON (`pid` 9999 = the router; attempts get
    /// one lane each).
    pub trace_export: Option<PathBuf>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            listen: "127.0.0.1:0".to_string(),
            hedge_ms: 50,
            retries: 3,
            backoff_ms: 10,
            health_interval: Duration::from_millis(200),
            shard_timeout: Duration::from_secs(10),
            slow_query: Duration::from_millis(100),
            slow_log_entries: 64,
            trace_entries: 64,
            trace_export: None,
        }
    }
}

/// The running front tier.
pub struct Router;

/// Handle over a started router: address, shard introspection, and
/// shutdown.
pub struct RouterHandle {
    addr: SocketAddr,
    shards: Vec<Arc<ShardState>>,
    supervisor: Arc<Supervisor>,
    metrics: Arc<RouteMetrics>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
    exporter: Option<Arc<TraceExporter>>,
}

/// Everything one connection thread needs.
struct RouteContext {
    shards: Vec<Arc<ShardState>>,
    ring: SeedRing,
    cfg: RouterConfig,
    metrics: Arc<RouteMetrics>,
    supervisor: Arc<Supervisor>,
    slow_log: AttemptLog,
    trace_log: AttemptLog,
    exporter: Option<Arc<TraceExporter>>,
}

impl Router {
    /// Starts the front tier over an already-built supervisor (spawned
    /// children or attached daemons). Runs one synchronous health pass
    /// first, so shards that are already up enter rotation before the
    /// first request arrives.
    pub fn start(supervisor: Supervisor, cfg: RouterConfig) -> std::io::Result<RouterHandle> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let supervisor = Arc::new(supervisor);
        supervisor.tick();
        let shards: Vec<Arc<ShardState>> = supervisor.shards().to_vec();
        assert!(!shards.is_empty(), "router needs at least one shard");
        let metrics = Arc::new(RouteMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));
        let exporter = match &cfg.trace_export {
            Some(path) => Some(Arc::new(TraceExporter::create(
                path,
                &[(ROUTER_PID, "bepi-route")],
            )?)),
            None => None,
        };

        let ctx = Arc::new(RouteContext {
            shards: shards.clone(),
            ring: SeedRing::new(shards.len()),
            metrics: Arc::clone(&metrics),
            supervisor: Arc::clone(&supervisor),
            slow_log: AttemptLog::new(cfg.slow_log_entries, cfg.slow_query),
            trace_log: AttemptLog::new(cfg.trace_entries, Duration::ZERO),
            exporter: exporter.clone(),
            cfg: cfg.clone(),
        });

        let health_thread = {
            let supervisor = Arc::clone(&supervisor);
            let interval = cfg.health_interval;
            std::thread::Builder::new()
                .name("bepi-route-health".to_string())
                .spawn(move || supervisor.run(interval))?
        };

        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("bepi-route-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Small request/response messages: Nagle +
                        // delayed ACK would stall them needlessly.
                        stream.set_nodelay(true).ok();
                        let ctx = Arc::clone(&ctx);
                        // The router is I/O-bound fan-out, not solve-bound:
                        // a thread per connection is plenty for a front
                        // tier whose clients are few and batchy.
                        let _ = std::thread::Builder::new()
                            .name("bepi-route-conn".to_string())
                            .spawn(move || handle_connection(stream, &ctx));
                    }
                })?
        };

        Ok(RouterHandle {
            addr,
            shards,
            supervisor,
            metrics,
            stop,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
            exporter,
        })
    }
}

impl RouterHandle {
    /// The router's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard states (for tests and introspection).
    pub fn shards(&self) -> &[Arc<ShardState>] {
        &self.shards
    }

    /// Router-level metrics.
    pub fn metrics(&self) -> &RouteMetrics {
        &self.metrics
    }

    /// The supervisor (e.g. for child pids in kill drills).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Stops accepting, stops the health loop, and shuts the shard
    /// children down gracefully.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.supervisor.shutdown();
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
        // Connection threads may straggle past the acceptor; the
        // exporter tolerates that by dropping events after close.
        if let Some(exporter) = self.exporter.take() {
            exporter.close();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || self.health_thread.is_some() {
            self.stop_all();
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &RouteContext) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let request = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(ParseError::Io(_)) => return,
        Err(e) => {
            let msg = match e {
                ParseError::TooLarge => "request head too large",
                ParseError::BodyTooLarge => "request body too large",
                ParseError::Malformed(_) => "malformed request",
                ParseError::Io(_) => unreachable!("handled above"),
            };
            respond(&stream, 400, &[], &http::json_error_body(msg));
            return;
        }
    };
    RouteMetrics::inc(&ctx.metrics.requests_total);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/query") => route_query(&stream, &request, ctx),
        ("GET", "/batch") => route_batch(&stream, &request, ctx),
        ("GET", "/healthz") => respond(&stream, 200, &[], "ok\n"),
        ("GET", "/version") => route_version(&stream, ctx),
        ("GET", "/route/health") => route_health(&stream, ctx),
        ("GET", "/debug/slow") => respond(&stream, 200, &[], &ctx.slow_log.render_json()),
        ("GET", "/debug/trace") => respond(&stream, 200, &[], &ctx.trace_log.render_json()),
        ("GET", "/metrics") => {
            // Fleet aggregation: one scrape of the router re-emits every
            // healthy shard's exposition with a `shard` label alongside
            // the router's own series.
            let own = render(&ctx.metrics, &ctx.shards);
            let mut shard_bodies: Vec<(u64, String)> = Vec::new();
            for s in &ctx.shards {
                if !s.is_healthy() {
                    continue;
                }
                if let Ok(resp) = s.client().get("/metrics") {
                    if resp.status == 200 {
                        shard_bodies.push((s.id as u64, resp.body));
                    }
                }
            }
            let body = merge_expositions(&own, &shard_bodies);
            respond_typed(&stream, 200, "text/plain; version=0.0.4", &[], &body);
        }
        _ => {
            respond(
                &stream,
                404,
                &[],
                &http::json_error_body(
                    "unknown path (try /query, /batch, /healthz, /metrics, /version, \
                     /route/health, /debug/slow, /debug/trace)",
                ),
            );
        }
    }
}

/// `GET /version`: the quorum-advertised fleet version plus per-shard
/// detail, shaped like a shard's own `/version` where it overlaps.
fn route_version(stream: &TcpStream, ctx: &RouteContext) {
    let advertised = quorum_version(&ctx.shards);
    let healthy = ctx.shards.iter().filter(|s| s.is_healthy()).count();
    let body = format!(
        "{{\"version\":{},\"shards\":{},\"healthy\":{},\"expected_epoch\":{}}}",
        advertised,
        ctx.shards.len(),
        healthy,
        ctx.supervisor.expected_epoch()
    );
    let version = advertised.to_string();
    respond(stream, 200, &[("X-Graph-Version", &version)], &body);
}

/// `GET /route/health`: the full fleet view.
fn route_health(stream: &TcpStream, ctx: &RouteContext) {
    let mut body = String::from("{\"shards\":[");
    for (i, s) in ctx.shards.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"id\":{},\"addr\":{},\"healthy\":{},\"version\":{},\"generation\":{},\
             \"last_probe_ms\":{}}}",
            s.id,
            http::json_string(&s.addr()),
            s.is_healthy(),
            s.version(),
            s.generation(),
            s.last_probe_age_ms()
                .map_or("null".to_string(), |ms| ms.to_string())
        ));
    }
    body.push_str(&format!(
        "],\"advertised_version\":{},\"quorum\":{}}}",
        quorum_version(&ctx.shards),
        ctx.shards.len() / 2 + 1
    ));
    respond(stream, 200, &[], &body);
}

/// Rebuilds the shard-facing path+query string for a `/query` request,
/// preserving exactly the parameters the shard contract knows about (a
/// stable, canonical order keeps shard response caches maximally hot).
fn shard_query_path(request: &Request) -> Result<(u64, String), String> {
    let seed_s = request
        .params
        .get("seed")
        .ok_or("missing required parameter: seed")?;
    let seed: u64 = seed_s
        .parse()
        .map_err(|_| format!("bad seed: {seed_s:?}"))?;
    let mut path = format!("/query?seed={seed}");
    for key in ["top", "mode", "epoch", "trace"] {
        if let Some(v) = request.params.get(key) {
            path.push_str(&format!("&{key}={v}"));
        }
    }
    Ok((seed, path))
}

/// The shard attempt order for a seed: ring order, healthy shards
/// first. Unhealthy shards stay in the list as a last resort — with the
/// whole fleet marked down, trying beats failing.
fn attempt_order(ctx: &RouteContext, seed: u64) -> Vec<usize> {
    let ring_order = ctx.ring.order(seed);
    let mut order: Vec<usize> = ring_order
        .iter()
        .copied()
        .filter(|&s| ctx.shards[s].is_healthy())
        .collect();
    for s in ring_order {
        if !order.contains(&s) {
            order.push(s);
        }
    }
    order
}

/// One shard attempt, recorded into the shard's counters. A transport
/// failure marks the shard unhealthy on the spot (the health loop
/// re-admits it later); a 5xx does not — the shard is alive, just
/// unable to serve this request. The request id rides along as
/// `X-Request-Id` so the shard's slowlog and trace correlate with ours.
fn attempt(
    shard: &ShardState,
    path: &str,
    rid_hex: &str,
) -> std::io::Result<(HttpResponse, AttemptTiming)> {
    let started = Instant::now();
    shard.requests_total.fetch_add(1, Ordering::Relaxed);
    match shard.client().get_with(path, &[("X-Request-Id", rid_hex)]) {
        Ok((resp, timing)) => {
            if let Some(v) = resp.graph_version() {
                shard.observe_version(v);
            }
            if resp.status < 500 {
                shard.latency.observe(started.elapsed().as_secs_f64());
            }
            Ok((resp, timing))
        }
        Err(e) => {
            shard.errors_total.fetch_add(1, Ordering::Relaxed);
            shard.mark(false);
            Err(e)
        }
    }
}

/// What the router learned from one shard attempt, in launch order.
/// Attempts still in flight when the request resolves stay `Abandoned`.
struct AttemptDetail {
    shard: usize,
    kind: AttemptKind,
    timing: AttemptTiming,
    outcome: AttemptOutcome,
}

/// Fetches `path` for `seed` with failover and (optionally) hedging.
/// Returns the winning response plus the id of the shard that served
/// it (`None` when every allowed attempt failed), and the per-attempt
/// record that feeds the router slowlog and trace splice.
fn fetch_with_failover(
    ctx: &RouteContext,
    seed: u64,
    path: &str,
    hedge: bool,
    rid_hex: &str,
) -> (Option<(usize, HttpResponse)>, Vec<AttemptDetail>) {
    let order = attempt_order(ctx, seed);
    let max_attempts = (1 + ctx.cfg.retries as usize).min(order.len().max(1));
    let hedge_delay = Duration::from_millis(ctx.cfg.hedge_ms);
    let use_hedge = hedge && ctx.cfg.hedge_ms > 0 && order.len() > 1;
    let primary = ctx.ring.primary(seed);

    let (tx, rx) = mpsc::channel::<(usize, std::io::Result<(HttpResponse, AttemptTiming)>)>();
    let mut details: Vec<AttemptDetail> = Vec::new();
    let mut outstanding = 0usize;
    let mut hedged = false;
    let launch =
        |i: usize, kind: AttemptKind, outstanding: &mut usize, details: &mut Vec<AttemptDetail>| {
            let shard = Arc::clone(&ctx.shards[order[i]]);
            details.push(AttemptDetail {
                shard: order[i],
                kind,
                timing: AttemptTiming::default(),
                outcome: AttemptOutcome::Abandoned,
            });
            let path = path.to_string();
            let rid_hex = rid_hex.to_string();
            let tx = tx.clone();
            *outstanding += 1;
            let _ = std::thread::Builder::new()
                .name("bepi-route-attempt".to_string())
                .spawn(move || {
                    let result = attempt(&shard, &path, &rid_hex);
                    let _ = tx.send((i, result));
                });
        };

    // The first launch is "primary" when the ring's first choice is
    // actually the seed's primary shard; with the primary filtered out
    // as unhealthy it is already a failover.
    let first_kind = if order[0] == primary {
        AttemptKind::Primary
    } else {
        AttemptKind::Failover
    };
    launch(0, first_kind, &mut outstanding, &mut details);
    let mut launched = 1usize;
    let overall_deadline = Instant::now() + ctx.cfg.shard_timeout + hedge_delay;
    let mut last_5xx: Option<(usize, HttpResponse)> = None;
    loop {
        // While exactly one un-hedged attempt is in flight, wait only
        // the hedge delay; afterwards wait out the overall budget.
        let wait = if use_hedge && !hedged && outstanding == 1 && launched < order.len() {
            hedge_delay
        } else {
            overall_deadline.saturating_duration_since(Instant::now())
        };
        match rx.recv_timeout(wait) {
            Ok((i, Ok((resp, timing)))) => {
                outstanding -= 1;
                details[i].timing = timing;
                details[i].outcome = AttemptOutcome::Status(resp.status);
                let shard_id = details[i].shard;
                if resp.status < 500 {
                    return (Some((shard_id, resp)), details);
                }
                // 5xx: remember the best loser (a 503 with Retry-After
                // is a real answer if every sibling also fails).
                last_5xx = Some((shard_id, resp));
                if launched < max_attempts {
                    RouteMetrics::inc(&ctx.metrics.retries_total);
                    std::thread::sleep(Duration::from_millis(ctx.cfg.backoff_ms * launched as u64));
                    launch(launched, AttemptKind::Retry, &mut outstanding, &mut details);
                    launched += 1;
                } else if outstanding == 0 {
                    return (last_5xx, details);
                }
            }
            Ok((i, Err(_))) => {
                outstanding -= 1;
                details[i].outcome = AttemptOutcome::IoError;
                if launched < max_attempts {
                    RouteMetrics::inc(&ctx.metrics.retries_total);
                    std::thread::sleep(Duration::from_millis(ctx.cfg.backoff_ms * launched as u64));
                    launch(launched, AttemptKind::Retry, &mut outstanding, &mut details);
                    launched += 1;
                } else if outstanding == 0 {
                    return (last_5xx, details);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if use_hedge && !hedged && launched < order.len() {
                    // Tail-latency hedge: duplicate the request at the
                    // next sibling; first answer wins.
                    hedged = true;
                    RouteMetrics::inc(&ctx.metrics.hedged_total);
                    launch(launched, AttemptKind::Hedge, &mut outstanding, &mut details);
                    launched += 1;
                } else {
                    return (last_5xx, details);
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return (last_5xx, details),
        }
    }
}

/// Adopts the caller's well-formed `X-Request-Id` or mints a fresh one:
/// the router is the fleet's ingress, so this is where correlation ids
/// are born. Malformed ids are replaced, never echoed.
fn ingress_request_id(request: &Request) -> RequestId {
    request
        .request_id
        .as_deref()
        .and_then(RequestId::parse)
        .unwrap_or_else(RequestId::mint)
}

/// True when the client asked for a spliced trace block.
fn is_traced(request: &Request) -> bool {
    request.params.get("trace").map(String::as_str) == Some("1")
}

/// `GET /query`: proxy with failover + hedging.
fn route_query(stream: &TcpStream, request: &Request, ctx: &RouteContext) {
    let started = Instant::now();
    let rid = ingress_request_id(request);
    let rid_hex = rid.to_hex();
    let traced = is_traced(request);
    let (seed, path) = match shard_query_path(request) {
        Ok(p) => p,
        Err(msg) => {
            respond(
                stream,
                400,
                &[("X-Request-Id", &rid_hex)],
                &http::json_error_body(&msg),
            );
            return;
        }
    };
    let (won, attempts) = fetch_with_failover(ctx, seed, &path, true, &rid_hex);
    let total_us = started.elapsed().as_micros() as u64;
    record_attempts(ctx, rid, &rid_hex, seed, total_us, &attempts, traced);
    match won {
        Some((shard_id, resp)) => {
            if shard_id != ctx.ring.primary(seed) {
                RouteMetrics::inc(&ctx.metrics.failovers_total);
            }
            if traced && resp.status == 200 {
                // Wrap the shard's own trace block with the router-side
                // view: which shards were tried, why, and how long each
                // hop phase took.
                let body = splice_route_block(&resp.body, &rid_hex, shard_id, &attempts);
                proxy_body(stream, &resp, &body, &rid_hex);
            } else {
                proxy_body(stream, &resp, &resp.body, &rid_hex);
            }
        }
        None => {
            RouteMetrics::inc(&ctx.metrics.errors_total);
            respond(
                stream,
                502,
                &[("Retry-After", "1"), ("X-Request-Id", &rid_hex)],
                &http::json_error_body("no shard could answer (fleet unavailable)"),
            );
        }
    }
}

/// Books every attempt of one routed request into the slowlog (subject
/// to its threshold) and — when traced — the trace ring, a structured
/// log line, and the Chrome export (parent span on lane 0, one lane per
/// attempt).
fn record_attempts(
    ctx: &RouteContext,
    rid: RequestId,
    rid_hex: &str,
    seed: u64,
    total_us: u64,
    attempts: &[AttemptDetail],
    traced: bool,
) {
    for (i, a) in attempts.iter().enumerate() {
        let entry = AttemptEntry {
            request_id: rid,
            seed,
            attempt: i as u64,
            shard: a.shard as u64,
            kind: a.kind,
            connect_us: a.timing.connect_us,
            send_us: a.timing.send_us,
            wait_us: a.timing.wait_us,
            outcome: a.outcome,
            total_us,
        };
        ctx.slow_log.record(&entry);
        if traced {
            ctx.trace_log.record(&entry);
        }
    }
    if !traced {
        return;
    }
    bepi_obs::info!(
        "route",
        "traced request",
        request_id = rid_hex,
        seed = seed,
        attempts = attempts.len(),
        total_us = total_us
    );
    let Some(exporter) = &ctx.exporter else {
        return;
    };
    let end = clock_us();
    let start = end.saturating_sub(total_us);
    let name = format!("route seed={seed}");
    exporter.emit(&TraceEvent {
        name: &name,
        cat: "route",
        ts_us: start,
        dur_us: total_us,
        pid: ROUTER_PID,
        tid: 0,
        args: &[("request_id", rid_hex)],
    });
    for (i, a) in attempts.iter().enumerate() {
        let hop_us = a.timing.connect_us + a.timing.send_us + a.timing.wait_us;
        let name = format!("attempt shard={} {}", a.shard, a.kind.name());
        let outcome = a.outcome.name();
        exporter.emit(&TraceEvent {
            name: &name,
            cat: "route",
            ts_us: start,
            // Abandoned attempts have no completed round trip; show
            // them spanning the whole request.
            dur_us: if hop_us > 0 { hop_us } else { total_us },
            pid: ROUTER_PID,
            tid: i as u64 + 1,
            args: &[("request_id", rid_hex), ("outcome", &outcome)],
        });
    }
}

/// Splices the router's per-attempt view into a shard's already-traced
/// `/query` body, just before the trailing `}` — the shard's own
/// `trace` block stays untouched inside.
fn splice_route_block(
    body: &str,
    rid_hex: &str,
    shard_id: usize,
    attempts: &[AttemptDetail],
) -> String {
    let mut block =
        format!(",\"route\":{{\"request_id\":\"{rid_hex}\",\"shard\":{shard_id},\"attempts\":[");
    for (i, a) in attempts.iter().enumerate() {
        if i > 0 {
            block.push(',');
        }
        block.push_str(&attempt_json(a, None));
    }
    block.push_str("]}");
    match body.rfind('}') {
        Some(pos) => {
            let mut out = String::with_capacity(body.len() + block.len());
            out.push_str(&body[..pos]);
            out.push_str(&block);
            out.push_str(&body[pos..]);
            out
        }
        None => body.to_string(),
    }
}

/// One attempt as a JSON object (with its seed when part of a batch).
fn attempt_json(a: &AttemptDetail, seed: Option<u64>) -> String {
    let seed_field = seed.map_or(String::new(), |s| format!("\"seed\":{s},"));
    format!(
        "{{{seed_field}\"shard\":{},\"kind\":\"{}\",\"connect_us\":{},\"send_us\":{},\
         \"wait_us\":{},\"outcome\":\"{}\"}}",
        a.shard,
        a.kind.name(),
        a.timing.connect_us,
        a.timing.send_us,
        a.timing.wait_us,
        a.outcome.name()
    )
}

/// `GET /batch?seeds=a,b,c[&top=K][&mode=M][&epoch=N][&merge=1]`:
/// scatter per-seed queries across the fleet, gather in seed order.
fn route_batch(stream: &TcpStream, request: &Request, ctx: &RouteContext) {
    let started = Instant::now();
    let rid = ingress_request_id(request);
    let rid_hex = rid.to_hex();
    let traced = is_traced(request);
    let Some(seeds_s) = request.params.get("seeds") else {
        respond(
            stream,
            400,
            &[("X-Request-Id", &rid_hex)],
            &http::json_error_body("missing required parameter: seeds (comma-separated)"),
        );
        return;
    };
    let seeds: Result<Vec<u64>, _> = seeds_s
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::parse)
        .collect();
    let Ok(seeds) = seeds else {
        respond(
            stream,
            400,
            &[("X-Request-Id", &rid_hex)],
            &http::json_error_body(&format!("bad seeds list: {seeds_s:?}")),
        );
        return;
    };
    if seeds.is_empty() {
        respond(
            stream,
            400,
            &[("X-Request-Id", &rid_hex)],
            &http::json_error_body("empty seeds list"),
        );
        return;
    }
    let merge = request.params.get("merge").map(String::as_str) == Some("1");
    let top_k: usize = request
        .params
        .get("top")
        .and_then(|t| t.parse().ok())
        .unwrap_or(bepi_server::worker::DEFAULT_TOP_K);

    // Scatter: group seed positions by primary shard so each group
    // multiplexes over its shard's persistent connections; gather into
    // a slot per input position so output order is input order.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ctx.shards.len()];
    for (pos, &seed) in seeds.iter().enumerate() {
        groups[attempt_order(ctx, seed)[0]].push(pos);
    }
    type BatchSlot = (Option<(usize, HttpResponse)>, Vec<AttemptDetail>);
    let mut slots: Vec<BatchSlot> = Vec::new();
    slots.resize_with(seeds.len(), || (None, Vec::new()));
    let slot_refs: Vec<std::sync::Mutex<&mut BatchSlot>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for positions in groups.iter().filter(|g| !g.is_empty()) {
            let slot_refs = &slot_refs;
            let seeds = &seeds;
            let rid_hex = &rid_hex;
            scope.spawn(move || {
                for &pos in positions {
                    let seed = seeds[pos];
                    let mut path = format!("/query?seed={seed}");
                    for key in ["top", "mode", "epoch", "trace"] {
                        if let Some(v) = request.params.get(key) {
                            path.push_str(&format!("&{key}={v}"));
                        }
                    }
                    // Per-seed failover, no hedging: the batch already
                    // saturates the fleet; duplicating every straggler
                    // would double the load exactly when it hurts. The
                    // whole batch shares one request id.
                    let got = fetch_with_failover(ctx, seed, &path, false, rid_hex);
                    **slot_refs[pos].lock().unwrap_or_else(|p| p.into_inner()) = got;
                }
            });
        }
    });

    let total_us = started.elapsed().as_micros() as u64;
    let mut answered: Vec<(usize, HttpResponse)> = Vec::with_capacity(seeds.len());
    let mut batch_attempts: Vec<(u64, AttemptDetail)> = Vec::new();
    let mut failed: Option<(usize, Option<HttpResponse>)> = None;
    for (pos, (slot, attempts)) in slots.into_iter().enumerate() {
        record_attempts(ctx, rid, &rid_hex, seeds[pos], total_us, &attempts, traced);
        batch_attempts.extend(attempts.into_iter().map(|a| (seeds[pos], a)));
        match slot {
            Some((shard_id, resp)) if resp.status == 200 => answered.push((shard_id, resp)),
            other => {
                failed.get_or_insert((pos, other.map(|(_, resp)| resp)));
            }
        }
    }
    match failed {
        Some((_, Some(resp))) => {
            RouteMetrics::inc(&ctx.metrics.errors_total);
            proxy_body(stream, &resp, &resp.body, &rid_hex);
            return;
        }
        Some((pos, None)) => {
            RouteMetrics::inc(&ctx.metrics.errors_total);
            respond(
                stream,
                502,
                &[("Retry-After", "1"), ("X-Request-Id", &rid_hex)],
                &http::json_error_body(&format!(
                    "no shard could answer seed {} (fleet unavailable)",
                    seeds[pos]
                )),
            );
            return;
        }
        None => {}
    }

    let version = answered
        .iter()
        .filter_map(|(_, r)| r.graph_version())
        .max()
        .unwrap_or(0)
        .to_string();
    let mut body = if merge {
        merge_topk(&seeds, &answered, top_k)
    } else {
        // Per-seed bodies verbatim, in seed order: byte-identical to
        // asking one daemon the same seeds one at a time.
        let mut body = String::from("{\"results\":[");
        for (i, (_, resp)) in answered.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&resp.body);
        }
        body.push_str("]}");
        body
    };
    if traced {
        // Aggregate scatter-gather view: every attempt of every seed,
        // spliced after the gathered results (each per-seed body still
        // carries its own shard's trace block when not merging).
        let mut block = format!(",\"route\":{{\"request_id\":\"{rid_hex}\",\"attempts\":[");
        for (i, (seed, a)) in batch_attempts.iter().enumerate() {
            if i > 0 {
                block.push(',');
            }
            block.push_str(&attempt_json(a, Some(*seed)));
        }
        block.push_str("]}");
        if let Some(pos) = body.rfind('}') {
            body.insert_str(pos, &block);
        }
    }
    respond(
        stream,
        200,
        &[("X-Graph-Version", &version), ("X-Request-Id", &rid_hex)],
        &body,
    );
}

/// One entry of a per-seed top-k list, with the score kept as the exact
/// text token the shard rendered (parsed only for ordering).
struct MergeEntry<'a> {
    seed: u64,
    node: u64,
    score_text: &'a str,
    score: f64,
}

/// Merges per-seed `results` arrays into one fleet-wide top-k ranking:
/// score descending, ties broken by (seed, node) ascending so the merge
/// is fully deterministic. Score text passes through verbatim — the
/// merged list quotes the shards, it does not re-round them.
fn merge_topk(seeds: &[u64], answered: &[(usize, HttpResponse)], top_k: usize) -> String {
    let mut entries: Vec<MergeEntry<'_>> = Vec::new();
    for (&seed, (_, resp)) in seeds.iter().zip(answered) {
        entries.extend(
            parse_results(&resp.body)
                .into_iter()
                .map(|(node, score_text)| MergeEntry {
                    seed,
                    node,
                    score_text,
                    score: score_text.parse().unwrap_or(f64::NEG_INFINITY),
                }),
        );
    }
    entries.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.seed, a.node).cmp(&(b.seed, b.node)))
    });
    entries.truncate(top_k);
    let mut body = format!("{{\"merged\":true,\"top\":{top_k},\"results\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"seed\":{},\"node\":{},\"score\":{}}}",
            e.seed, e.node, e.score_text
        ));
    }
    body.push_str("]}");
    body
}

/// Extracts `(node, score-text)` pairs from a shard `/query` body's
/// `"results":[{"node":N,"score":S},...]` array without re-rendering
/// the score tokens.
fn parse_results(body: &str) -> Vec<(u64, &str)> {
    let mut out = Vec::new();
    let Some(start) = body.find("\"results\":[") else {
        return out;
    };
    let mut rest = &body[start + "\"results\":[".len()..];
    while let Some(node_at) = rest.find("{\"node\":") {
        rest = &rest[node_at + "{\"node\":".len()..];
        let Some(comma) = rest.find(',') else { break };
        let Ok(node) = rest[..comma].trim().parse::<u64>() else {
            break;
        };
        let Some(score_at) = rest.find("\"score\":") else {
            break;
        };
        rest = &rest[score_at + "\"score\":".len()..];
        let end = rest.find('}').unwrap_or(rest.len());
        out.push((node, rest[..end].trim()));
        rest = &rest[end..];
    }
    out
}

/// Proxies a shard response: status, the given body (the shard's
/// verbatim, or the trace-spliced variant), and the lineage headers a
/// client of a single daemon would have seen. The request id is always
/// echoed — from the shard's echo when present, from the router's own
/// copy otherwise (e.g. a pre-trace-era shard mid-rollout).
fn proxy_body(stream: &TcpStream, resp: &HttpResponse, body: &str, rid_hex: &str) {
    const FORWARDED: [&str; 7] = [
        "x-graph-version",
        "x-approx",
        "x-cache",
        "x-shard",
        "x-request-id",
        "retry-after",
        "allow",
    ];
    let mut headers: Vec<(&str, &str)> = resp
        .headers
        .iter()
        .filter(|(n, _)| FORWARDED.contains(&n.as_str()))
        .map(|(n, v)| (canonical_header(n), v.as_str()))
        .collect();
    if !headers.iter().any(|(n, _)| *n == "X-Request-Id") {
        headers.push(("X-Request-Id", rid_hex));
    }
    let content_type = resp.header("content-type").unwrap_or("application/json");
    respond_typed(stream, resp.status, content_type, &headers, body);
}

/// Maps a lower-cased forwarded header name back to its canonical
/// spelling (cosmetic: clients match case-insensitively, but the proxy
/// should look like the daemon it fronts).
fn canonical_header(lower: &str) -> &'static str {
    match lower {
        "x-graph-version" => "X-Graph-Version",
        "x-approx" => "X-Approx",
        "x-cache" => "X-Cache",
        "x-shard" => "X-Shard",
        "x-request-id" => "X-Request-Id",
        "retry-after" => "Retry-After",
        "allow" => "Allow",
        _ => "X-Forwarded-Header",
    }
}

fn respond(stream: &TcpStream, status: u16, extra: &[(&str, &str)], body: &str) {
    respond_typed(stream, status, "application/json", extra, body);
}

fn respond_typed(
    mut stream: &TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
) {
    let _ = http::write_response(&mut stream, status, content_type, extra, body);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_results_extracts_nodes_and_score_text() {
        let body = "{\"seed\":7,\"top\":3,\"mode\":\"exact\",\"iterations\":12,\
                    \"residual\":1e-10,\"results\":[{\"node\":7,\"score\":0.05},\
                    {\"node\":3,\"score\":6.938893903907228e-18},{\"node\":1,\"score\":0.001}]}";
        let got = parse_results(body);
        assert_eq!(
            got,
            vec![(7, "0.05"), (3, "6.938893903907228e-18"), (1, "0.001")]
        );
    }

    #[test]
    fn parse_results_tolerates_empty_and_garbage() {
        assert!(parse_results("{\"results\":[]}").is_empty());
        assert!(parse_results("not json at all").is_empty());
        assert!(parse_results("{\"results\":[{\"node\":x}]}").is_empty());
    }

    #[test]
    fn merge_keeps_score_text_verbatim_and_sorts_desc() {
        let mk = |seed: u64, body: &str| HttpResponse {
            status: 200,
            headers: vec![("x-graph-version".to_string(), seed.to_string())],
            body: body.to_string(),
        };
        let seeds = [1u64, 2];
        let answered = vec![
            (
                0usize,
                mk(
                    1,
                    "{\"results\":[{\"node\":5,\"score\":0.5},{\"node\":6,\"score\":0.125}]}",
                ),
            ),
            (1usize, mk(2, "{\"results\":[{\"node\":9,\"score\":0.25}]}")),
        ];
        let merged = merge_topk(&seeds, &answered, 2);
        assert_eq!(
            merged,
            "{\"merged\":true,\"top\":2,\"results\":[\
             {\"seed\":1,\"node\":5,\"score\":0.5},\
             {\"seed\":2,\"node\":9,\"score\":0.25}]}"
        );
        // Ties break deterministically by (seed, node).
        let answered_tie = vec![
            (0usize, mk(1, "{\"results\":[{\"node\":9,\"score\":0.5}]}")),
            (1usize, mk(2, "{\"results\":[{\"node\":5,\"score\":0.5}]}")),
        ];
        let merged = merge_topk(&seeds, &answered_tie, 2);
        assert_eq!(
            merged,
            "{\"merged\":true,\"top\":2,\"results\":[\
             {\"seed\":1,\"node\":9,\"score\":0.5},\
             {\"seed\":2,\"node\":5,\"score\":0.5}]}"
        );
    }
}
