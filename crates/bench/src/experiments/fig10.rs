//! Figure 10 (Appendix I) — accuracy vs iterations against the exact
//! solution `r* = c H^{-1} q` on the Physicians stand-in (241 nodes).
//!
//! Power iteration exposes its iterates directly; BePI and GMRES are
//! swept over tolerances, recording (inner iterations, L2 error) pairs.
//! The paper's observation: BePI converges in far fewer iterations and to
//! machine-precision errors, while power iteration and GMRES approach the
//! tolerance slowly.

use crate::table::Table;
use bepi_core::accuracy::l2_error;
use bepi_core::prelude::*;
use bepi_core::rwr::seed_vector;
use bepi_graph::datasets::physicians_like;
use bepi_solver::power::{power_iteration, PowerConfig};
use std::fmt::Write as _;

/// Tolerance sweep for the iterative methods.
pub const TOLS: [f64; 7] = [1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12];

/// Number of query seeds averaged.
pub const SEEDS: usize = 20;

/// Runs the accuracy experiment.
pub fn run() -> String {
    let mut out = String::new();
    let g = physicians_like();
    let _ = writeln!(
        out,
        "Figure 10 — L2 error vs iterations on {}-node Physicians stand-in ({} seeds)\n",
        g.n(),
        SEEDS
    );
    let exact = DenseExact::with_defaults(&g).expect("small graph");
    let seeds: Vec<usize> = (0..SEEDS).map(|i| (i * 13) % g.n()).collect();

    // Power iteration: error after each iteration, averaged over seeds.
    let a_norm = g.row_normalized();
    let mut power_err: Vec<f64> = Vec::new();
    for &s in &seeds {
        let q = seed_vector(g.n(), s).expect("seed");
        let truth = exact.query(s).expect("exact").scores;
        let res = power_iteration(
            &a_norm,
            bepi_core::DEFAULT_RESTART_PROB,
            &q,
            &PowerConfig {
                tol: 1e-14,
                max_iters: 250,
            },
            true,
        )
        .expect("power");
        for (i, snapshot) in res.history.iter().enumerate() {
            let e = l2_error(snapshot, &truth);
            if power_err.len() <= i {
                power_err.push(0.0);
            }
            power_err[i] += e / SEEDS as f64;
        }
    }
    let _ = writeln!(out, "Power iteration error trajectory:");
    let mut t = Table::new(vec!["iteration", "avg L2 error"]);
    for i in [0usize, 4, 9, 24, 49, 99, 149, 199] {
        if i < power_err.len() {
            t.row(vec![(i + 1).to_string(), format!("{:.3e}", power_err[i])]);
        }
    }
    let _ = writeln!(out, "{}", t.render());

    // BePI and GMRES: tolerance sweep → (avg iterations, avg error).
    for (label, is_bepi) in [("BePI", true), ("GMRES", false)] {
        let _ = writeln!(out, "{label} (tolerance sweep):");
        let mut t = Table::new(vec!["tolerance", "avg iterations", "avg L2 error"]);
        for &tol in &TOLS {
            let (mut it_sum, mut err_sum) = (0.0f64, 0.0f64);
            if is_bepi {
                let solver = BePi::preprocess(
                    &g,
                    &BePiConfig {
                        tol,
                        ..BePiConfig::default()
                    },
                )
                .expect("preprocess");
                for &s in &seeds {
                    let r = solver.query(s).expect("query");
                    let truth = exact.query(s).expect("exact").scores;
                    it_sum += r.iterations as f64;
                    err_sum += l2_error(&r.scores, &truth);
                }
            } else {
                let solver =
                    GmresSolver::new(&g, bepi_core::DEFAULT_RESTART_PROB, tol).expect("gmres");
                for &s in &seeds {
                    let r = solver.query(s).expect("query");
                    let truth = exact.query(s).expect("exact").scores;
                    it_sum += r.iterations as f64;
                    err_sum += l2_error(&r.scores, &truth);
                }
            }
            t.row(vec![
                format!("{tol:.0e}"),
                format!("{:.1}", it_sum / SEEDS as f64),
                format!("{:.3e}", err_sum / SEEDS as f64),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "Expected shape: BePI reaches any target error in the fewest iterations\n\
         (preconditioned Schur system), and its error decreases monotonically with ε."
    );
    out
}
