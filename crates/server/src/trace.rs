//! The traced-request ring behind `GET /debug/trace`.
//!
//! Every `?trace=1` query — the ones whose responses carry the spliced
//! per-stage `trace` block — is also recorded here, so an operator can
//! inspect the most recent traced requests without having captured the
//! response bodies. Like the slow-query log, the ring is a seqlock of
//! fixed-width records: recording is atomics-only on the hot path and
//! rendering skips torn slots.

use bepi_obs::ring::{SeqRing, RECORD_FIELDS};
use bepi_obs::trace::RequestId;

/// One retained traced query with its per-stage timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedQuery {
    /// Correlation id (propagated via `X-Request-Id`).
    pub request_id: RequestId,
    /// Seed node of the query.
    pub seed: u64,
    /// `top` parameter of the query.
    pub top_k: u64,
    /// Admission-queue wait in microseconds.
    pub queue_us: u64,
    /// Solve stage in microseconds (0 for cache hits).
    pub solve_us: u64,
    /// Top-k selection stage in microseconds (0 for cache hits).
    pub topk_us: u64,
    /// Serialization stage in microseconds (0 for cache hits).
    pub serialize_us: u64,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// Whether the response came from the cache.
    pub cache_hit: bool,
    /// Graph snapshot version that answered.
    pub version: u64,
    /// Shard id of this daemon (`None` when standalone).
    pub shard: Option<u64>,
}

/// Seqlock ring of the most recent traced queries.
#[derive(Debug)]
pub struct TraceLog {
    ring: SeqRing,
}

impl TraceLog {
    /// A ring retaining the `entries` most recent traced queries.
    pub fn new(entries: usize) -> TraceLog {
        TraceLog {
            ring: SeqRing::new(entries.max(1)),
        }
    }

    /// Records one traced query. Lock-free.
    pub fn record(&self, t: &TracedQuery) {
        let mut fields = [0u64; RECORD_FIELDS];
        fields[0] = t.request_id.hi;
        fields[1] = t.request_id.lo;
        fields[2] = t.seed;
        fields[3] = t.top_k;
        fields[4] = t.queue_us;
        fields[5] = t.solve_us;
        fields[6] = t.topk_us;
        fields[7] = t.serialize_us;
        fields[8] = t.total_us;
        fields[9] = u64::from(t.cache_hit);
        fields[10] = t.version;
        fields[11] = t.shard.map_or(0, |s| s + 1);
        self.ring.push(fields);
    }

    /// The retained traced queries, newest first.
    pub fn entries(&self) -> Vec<TracedQuery> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|f| TracedQuery {
                request_id: RequestId { hi: f[0], lo: f[1] },
                seed: f[2],
                top_k: f[3],
                queue_us: f[4],
                solve_us: f[5],
                topk_us: f[6],
                serialize_us: f[7],
                total_us: f[8],
                cache_hit: f[9] != 0,
                version: f[10],
                shard: f[11].checked_sub(1),
            })
            .collect()
    }

    /// Renders the `GET /debug/trace` JSON body, newest entry first.
    pub fn render_json(&self) -> String {
        let entries = self.entries();
        let mut body = format!("{{\"capacity\":{},\"entries\":[", self.ring.capacity());
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"request_id\":\"{}\",\"seed\":{},\"top\":{},\"queue_us\":{},\
                 \"solve_us\":{},\"topk_us\":{},\"serialize_us\":{},\"total_us\":{},\
                 \"cache_hit\":{},\"version\":{},\"shard\":{}}}",
                e.request_id.to_hex(),
                e.seed,
                e.top_k,
                e.queue_us,
                e.solve_us,
                e.topk_us,
                e.serialize_us,
                e.total_us,
                e.cache_hit,
                e.version,
                e.shard.map_or("null".to_string(), |s| s.to_string())
            ));
        }
        body.push_str("]}");
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seed: u64) -> TracedQuery {
        TracedQuery {
            request_id: RequestId {
                hi: seed,
                lo: seed.wrapping_mul(7),
            },
            seed,
            top_k: 10,
            queue_us: seed,
            solve_us: seed * 2,
            topk_us: seed * 3,
            serialize_us: seed * 4,
            total_us: seed * 11,
            cache_hit: seed % 2 == 0,
            version: 1,
            shard: Some(seed % 3),
        }
    }

    #[test]
    fn round_trips_and_evicts_oldest() {
        let log = TraceLog::new(3);
        for seed in 1..=5 {
            log.record(&t(seed));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], t(5), "newest first");
        assert_eq!(entries[2], t(3), "oldest retained");
        let json = log.render_json();
        assert!(json.starts_with("{\"capacity\":3,\"entries\":["));
        assert!(json.contains(&format!("\"request_id\":\"{}\"", t(5).request_id.to_hex())));
        assert!(json.contains("\"total_us\":55"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn standalone_daemon_renders_null_shard() {
        let log = TraceLog::new(2);
        log.record(&TracedQuery {
            shard: None,
            ..t(1)
        });
        assert!(log.render_json().contains("\"shard\":null"));
    }

    #[test]
    fn concurrent_writers_never_surface_a_torn_record() {
        use std::sync::Arc;
        let log = Arc::new(TraceLog::new(16));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        log.record(&t(w * 1000 + i));
                    }
                })
            })
            .collect();
        let reader = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for e in log.entries() {
                        // Every field of t(seed) is derived from the
                        // seed; any mixture of two records breaks one
                        // of these invariants.
                        assert_eq!(e, t(e.seed), "torn trace record surfaced");
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert!(!log.entries().is_empty());
    }
}
