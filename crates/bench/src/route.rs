//! The `bepi bench --route` driver: router-over-N-shards vs
//! single-daemon throughput, with a machine-readable `BENCH_PR7.json`
//! artifact.
//!
//! The workload isolates the honest win axis of `bepi route` on one
//! machine: **cache partitioning**. Every process — the lone daemon and
//! each shard — gets the same per-process response-cache budget of `C`
//! entries, and the benchmark drives a working set of ~1.5·C distinct
//! `(seed, top)` keys in cyclic order. Under LRU a cyclic scan that
//! exceeds capacity yields ~0 % hits, so the single daemon re-solves
//! every query; the router's rendezvous hash sends each seed to one
//! shard, so each of the N shards sees only ~1.5·C/N keys — comfortably
//! inside its own C-entry cache — and serves hits after the first pass.
//! Same per-process memory, N× the effective cache: that is the
//! scale-out argument, and the artifact records the measured hit/miss
//! deltas of the timed phase so the mechanism is visible, not asserted.
//!
//! Both tiers are measured the same way: a closed-loop single client
//! issuing `Connection: close` requests (one connection per request) over
//! the identical key sequence, after one untimed warm-up pass. During
//! the warm-up the router's bodies are compared byte-for-byte against
//! the single daemon's — the merged/forwarded answers must be
//! bit-identical to the single-daemon oracle (`bit_identical` in the
//! artifact).
//!
//! The shard daemons are spawned by `bepi route` itself (the same
//! supervision path production uses), all `--mmap` over one v6 index so
//! the page cache is shared; the benchmark only talks HTTP.

use bepi_graph::Dataset;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::perf::json;

/// Schema tag stamped into (and required from) every route artifact.
pub const SCHEMA: &str = "bepi-route-bench/v1";

/// Configuration for a [`run`].
#[derive(Debug, Clone)]
pub struct RouteBenchConfig {
    /// Anchor graphs to measure.
    pub datasets: Vec<Dataset>,
    /// Shard daemons behind the router.
    pub shards: usize,
    /// Per-process response-cache capacity, entries (`--cache-entries`,
    /// applied to the single daemon and to every shard alike).
    pub cache_entries: usize,
    /// Distinct `(seed, top)` keys in the cyclic working set. Sized
    /// above `cache_entries` so one process thrashes while each shard's
    /// partition fits.
    pub working_set: usize,
    /// Timed passes over the working set (after one untimed warm-up).
    pub passes: usize,
    /// `top` parameter of every query.
    pub top_k: usize,
    /// Marks the artifact as a reduced smoke run.
    pub quick: bool,
}

impl RouteBenchConfig {
    /// The CI smoke configuration: smallest anchor graph, tiny working
    /// set, still large enough to show the partitioning effect.
    pub fn quick() -> Self {
        Self {
            datasets: vec![Dataset::Slashdot],
            shards: 2,
            cache_entries: 16,
            working_set: 24,
            passes: 2,
            top_k: 20,
            quick: true,
        }
    }

    /// The full configuration: the Bear-feasible anchor graphs, two
    /// shards, a working set at 1.5× the per-process cache.
    pub fn full() -> Self {
        Self {
            datasets: Dataset::small().to_vec(),
            shards: 2,
            cache_entries: 64,
            working_set: 96,
            passes: 3,
            top_k: 20,
            quick: false,
        }
    }
}

/// One tier's timed measurement (the single daemon or the router).
#[derive(Debug, Clone)]
pub struct TierRun {
    /// Requests issued in the timed phase.
    pub requests: usize,
    /// Wall time of the timed phase, seconds.
    pub wall_s: f64,
    /// Response-cache hits across the tier's process(es) during the
    /// timed phase (counter delta; summed over shards for the router).
    pub cache_hits: u64,
    /// Response-cache misses during the timed phase (counter delta).
    pub cache_misses: u64,
}

impl TierRun {
    /// Queries per second of the timed phase.
    pub fn qps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.requests as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Router-vs-single comparison on one dataset.
#[derive(Debug, Clone)]
pub struct RouteDatasetReport {
    /// Dataset name (the `*-like` anchor-graph label).
    pub dataset: String,
    /// Nodes in the generated graph.
    pub n: usize,
    /// Edges in the generated graph.
    pub m: usize,
    /// Whether every router body matched the single-daemon oracle
    /// byte-for-byte during the warm-up pass.
    pub bit_identical: bool,
    /// The lone `bepi serve --mmap` daemon.
    pub single: TierRun,
    /// `bepi route` over the shard fleet.
    pub router: TierRun,
}

impl RouteDatasetReport {
    /// Router throughput relative to the single daemon.
    pub fn speedup(&self) -> f64 {
        let (s, r) = (self.single.qps(), self.router.qps());
        if s > 0.0 {
            r / s
        } else {
            0.0
        }
    }
}

/// A complete route bench run.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Whether this was the reduced smoke configuration.
    pub quick: bool,
    /// Cores visible to the process when the run started.
    pub available_parallelism: usize,
    /// Shards behind the router.
    pub shards: usize,
    /// Per-process cache capacity, entries.
    pub cache_entries: usize,
    /// Distinct keys in the working set.
    pub working_set: usize,
    /// Timed passes over the working set.
    pub passes: usize,
    /// `top` parameter of every query.
    pub top_k: usize,
    /// Per-dataset measurements.
    pub datasets: Vec<RouteDatasetReport>,
}

/// A spawned `bepi` process (daemon or router) with its announced
/// address and, for the router, the shard addresses it printed.
/// Shared with the `--trace` overhead bench, which spawns one daemon.
pub(crate) struct Proc {
    child: Child,
    pub(crate) addr: String,
    shard_addrs: Vec<String>,
}

impl Proc {
    pub(crate) fn spawn(bin: &Path, args: &[String], router: bool) -> Result<Proc, String> {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawning {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().ok_or("child stdout missing")?;
        let mut lines = BufReader::new(stdout).lines();
        let mut addr = None;
        let mut shard_addrs = Vec::new();
        for line in lines.by_ref() {
            let line = line.map_err(|e| format!("reading child stdout: {e}"))?;
            if addr.is_none() {
                if let Some(rest) = line.split("http://").nth(1) {
                    addr = Some(
                        rest.split_whitespace()
                            .next()
                            .ok_or("bad listen line")?
                            .to_string(),
                    );
                    // The daemon announces only itself; the router goes
                    // on to print one line per shard, then `endpoints:`.
                    if !router {
                        break;
                    }
                    continue;
                }
            } else if let Some(rest) = line.split("http://").nth(1) {
                shard_addrs.push(
                    rest.split_whitespace()
                        .next()
                        .ok_or("bad shard line")?
                        .to_string(),
                );
            }
            if line.starts_with("endpoints:") {
                break;
            }
        }
        let addr = addr.ok_or("child exited before announcing its address")?;
        Ok(Proc {
            child,
            addr,
            shard_addrs,
        })
    }

    /// Sums a counter across this process and (for the router) its
    /// shards' `/metrics` pages.
    fn metric_sum(&self, name: &str) -> Result<u64, String> {
        let mut total = 0.0;
        let targets = if self.shard_addrs.is_empty() {
            std::slice::from_ref(&self.addr)
        } else {
            &self.shard_addrs[..]
        };
        for addr in targets {
            let (status, body) = http_get(addr, "/metrics")?;
            if status != 200 {
                return Err(format!("GET {addr}/metrics -> {status}"));
            }
            total += parse_metric(&body, name).unwrap_or(0.0);
        }
        Ok(total as u64)
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        // EOF on stdin asks for a graceful shutdown — essential for the
        // router, which must reap its shard children. SIGKILL fallback.
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One `Connection: close` HTTP GET; returns (status, body).
fn http_get(addr: &str, target: &str) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("send {target}: {e}"))?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)
        .map_err(|e| format!("read {target}: {e}"))?;
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line for {target}"))?;
    let body = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header terminator for {target}"))?
        .1
        .to_string();
    Ok((status, body))
}

/// Parses one metric value off a `/metrics` page by full-name prefix.
fn parse_metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|r| r.strip_prefix(' '))
            .and_then(|r| r.trim().parse().ok())
    })
}

/// Drives every key once, in order; returns the bodies.
fn one_pass(addr: &str, keys: &[(usize, usize)]) -> Result<Vec<String>, String> {
    let mut bodies = Vec::with_capacity(keys.len());
    for &(seed, top) in keys {
        let target = format!("/query?seed={seed}&top={top}");
        let (status, body) = http_get(addr, &target)?;
        if status != 200 {
            return Err(format!("GET {target} -> {status}: {body}"));
        }
        bodies.push(body);
    }
    Ok(bodies)
}

/// Warm-up pass + timed passes + cache-counter deltas for one tier.
fn measure_tier(
    proc_: &Proc,
    keys: &[(usize, usize)],
    passes: usize,
) -> Result<(TierRun, Vec<String>), String> {
    let oracle = one_pass(&proc_.addr, keys)?;
    let hits0 = proc_.metric_sum("bepi_cache_hits_total")?;
    let misses0 = proc_.metric_sum("bepi_cache_misses_total")?;
    let start = Instant::now();
    for _ in 0..passes {
        one_pass(&proc_.addr, keys)?;
    }
    let wall_s = start.elapsed().as_secs_f64();
    Ok((
        TierRun {
            requests: passes * keys.len(),
            wall_s,
            cache_hits: proc_.metric_sum("bepi_cache_hits_total")? - hits0,
            cache_misses: proc_.metric_sum("bepi_cache_misses_total")? - misses0,
        },
        oracle,
    ))
}

/// Runs the router-vs-single workload. `bin` is the `bepi` binary used
/// to preprocess the index and to spawn the daemon/router (the caller
/// passes `std::env::current_exe()`).
pub fn run(cfg: &RouteBenchConfig, bin: &Path) -> Result<RouteReport, String> {
    if cfg.shards < 2 {
        return Err("--route needs at least 2 shards".into());
    }
    let tmp = std::env::temp_dir().join(format!("bepi_route_bench_{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).map_err(|e| format!("mkdir {}: {e}", tmp.display()))?;
    let result = run_in(cfg, bin, &tmp);
    std::fs::remove_dir_all(&tmp).ok();
    result
}

fn run_in(cfg: &RouteBenchConfig, bin: &Path, tmp: &Path) -> Result<RouteReport, String> {
    let mut datasets = Vec::with_capacity(cfg.datasets.len());
    for &ds in &cfg.datasets {
        let spec = ds.spec();
        let g = spec.generate();
        let index = preprocess(bin, &g, tmp, spec.name)?;
        // Distinct seeds in a fixed cyclic order: the worst case for one
        // LRU of `cache_entries`, the easy case for N partitioned ones.
        let stride = (g.n() / cfg.working_set.max(1)).max(1);
        let keys: Vec<(usize, usize)> = (0..cfg.working_set)
            .map(|i| ((i * stride) % g.n(), cfg.top_k))
            .collect();

        let cache = cfg.cache_entries.to_string();
        let single = Proc::spawn(
            bin,
            &[
                "serve".into(),
                index.display().to_string(),
                "--listen".into(),
                "127.0.0.1:0".into(),
                "--mmap".into(),
                "--cache-entries".into(),
                cache.clone(),
            ],
            false,
        )?;
        let (single_run, oracle) = measure_tier(&single, &keys, cfg.passes)?;
        drop(single);

        let router = Proc::spawn(
            bin,
            &[
                "route".into(),
                index.display().to_string(),
                "--shards".into(),
                cfg.shards.to_string(),
                "--mmap".into(),
                "--cache-entries".into(),
                cache,
            ],
            true,
        )?;
        if router.shard_addrs.len() != cfg.shards {
            return Err(format!(
                "router announced {} shards, expected {}",
                router.shard_addrs.len(),
                cfg.shards
            ));
        }
        let (router_run, router_bodies) = measure_tier(&router, &keys, cfg.passes)?;
        let bit_identical = router_bodies == oracle;
        drop(router);

        datasets.push(RouteDatasetReport {
            dataset: spec.name.to_string(),
            n: g.n(),
            m: g.m(),
            bit_identical,
            single: single_run,
            router: router_run,
        });
    }
    Ok(RouteReport {
        quick: cfg.quick,
        available_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        shards: cfg.shards,
        cache_entries: cfg.cache_entries,
        working_set: cfg.working_set,
        passes: cfg.passes,
        top_k: cfg.top_k,
        datasets,
    })
}

/// Writes the graph as an edge list and runs `bepi preprocess` into a
/// mappable v6 index with the graph embedded (what `--mmap` serving and
/// shard spawning require).
pub(crate) fn preprocess(
    bin: &Path,
    g: &bepi_graph::Graph,
    tmp: &Path,
    name: &str,
) -> Result<PathBuf, String> {
    let mut edges = String::with_capacity(g.m() * 12);
    for u in 0..g.n() {
        for v in g.out_neighbors(u) {
            let _ = writeln!(edges, "{u} {v}");
        }
    }
    let edges_path = tmp.join(format!("{name}.txt"));
    std::fs::write(&edges_path, edges).map_err(|e| format!("writing edges: {e}"))?;
    let index = tmp.join(format!("{name}.bepi"));
    let out = Command::new(bin)
        .args([
            "preprocess",
            &edges_path.display().to_string(),
            &index.display().to_string(),
            "--format",
            "v6",
            "--embed-graph",
        ])
        .output()
        .map_err(|e| format!("running preprocess: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "preprocess {name} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(index)
}

/// Renders the human-readable comparison table.
pub fn render_table(report: &RouteReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bepi bench --route ({} cores visible, {} shards, {}-entry cache/process, \
         {} keys x {} passes, top {}{})",
        report.available_parallelism,
        report.shards,
        report.cache_entries,
        report.working_set,
        report.passes,
        report.top_k,
        if report.quick { ", quick" } else { "" }
    );
    for ds in &report.datasets {
        let _ = writeln!(
            out,
            "\n{} (n = {}, m = {}, bit-identical: {})",
            ds.dataset, ds.n, ds.m, ds.bit_identical
        );
        let mut table = crate::table::Table::new(vec![
            "tier", "requests", "wall", "qps", "hits", "misses", "speedup",
        ]);
        for (tier, run) in [("single", &ds.single), ("router", &ds.router)] {
            table.row(vec![
                tier.to_string(),
                run.requests.to_string(),
                crate::table::fmt_secs(run.wall_s),
                format!("{:.0}/s", run.qps()),
                run.cache_hits.to_string(),
                run.cache_misses.to_string(),
                if tier == "router" {
                    format!("{:.2}x", ds.speedup())
                } else {
                    "1.00x".to_string()
                },
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

/// Serializes a report to the `bepi-route-bench/v1` JSON document.
pub fn to_json(report: &RouteReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"quick\": {},", report.quick);
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        report.available_parallelism
    );
    let _ = writeln!(out, "  \"shards\": {},", report.shards);
    let _ = writeln!(out, "  \"cache_entries\": {},", report.cache_entries);
    let _ = writeln!(out, "  \"working_set\": {},", report.working_set);
    let _ = writeln!(out, "  \"passes\": {},", report.passes);
    let _ = writeln!(out, "  \"top_k\": {},", report.top_k);
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", ds.dataset);
        let _ = writeln!(out, "      \"n\": {},", ds.n);
        let _ = writeln!(out, "      \"m\": {},", ds.m);
        let _ = writeln!(out, "      \"bit_identical\": {},", ds.bit_identical);
        for (tier, run) in [("single", &ds.single), ("router", &ds.router)] {
            let _ = writeln!(
                out,
                "      \"{tier}\": {{\"requests\": {}, \"wall_s\": {:.6}, \
                 \"qps\": {:.2}, \"cache_hits\": {}, \"cache_misses\": {}}},",
                run.requests,
                run.wall_s,
                run.qps(),
                run.cache_hits,
                run.cache_misses
            );
        }
        let _ = writeln!(
            out,
            "      \"router_speedup_vs_single\": {:.4}",
            ds.speedup()
        );
        out.push_str(if i + 1 < report.datasets.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `bepi-route-bench/v1` document: well-formed JSON, correct
/// schema tag, sane top-level parameters, non-empty datasets each with
/// complete `single`/`router` tiers, and `bit_identical: true` — a
/// router that serves different bytes than the single daemon is a
/// correctness failure, not a measurement.
pub fn validate_json(text: &str) -> std::result::Result<(), String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    match json::get(obj, "schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" tag".into()),
    }
    json::get(obj, "quick")
        .and_then(|v| v.as_bool())
        .ok_or("missing boolean \"quick\"")?;
    for (key, min) in [
        ("available_parallelism", 1.0),
        ("shards", 2.0),
        ("cache_entries", 1.0),
        ("working_set", 1.0),
        ("passes", 1.0),
        ("top_k", 1.0),
    ] {
        let v = json::get(obj, key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < min {
            return Err(format!("\"{key}\" must be >= {min}"));
        }
    }
    let datasets = json::get(obj, "datasets")
        .and_then(|v| v.as_array())
        .ok_or("missing \"datasets\" array")?;
    if datasets.is_empty() {
        return Err("\"datasets\" must be non-empty".into());
    }
    for (i, ds) in datasets.iter().enumerate() {
        let ds = ds
            .as_object()
            .ok_or_else(|| format!("dataset {i} must be an object"))?;
        json::get(ds, "dataset")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("dataset {i}: missing \"dataset\" name"))?;
        for key in ["n", "m"] {
            json::get(ds, key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("dataset {i}: missing numeric \"{key}\""))?;
        }
        if json::get(ds, "bit_identical").and_then(|v| v.as_bool()) != Some(true) {
            return Err(format!(
                "dataset {i}: \"bit_identical\" must be true (router bodies \
                 must match the single-daemon oracle)"
            ));
        }
        for tier in ["single", "router"] {
            let t = json::get(ds, tier)
                .and_then(|v| v.as_object())
                .ok_or_else(|| format!("dataset {i}: missing \"{tier}\" object"))?;
            for key in ["requests", "wall_s", "qps", "cache_hits", "cache_misses"] {
                let v = json::get(t, key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("dataset {i} {tier}: missing numeric \"{key}\""))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "dataset {i} {tier}: \"{key}\" must be finite and non-negative"
                    ));
                }
            }
        }
        let v = json::get(ds, "router_speedup_vs_single")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("dataset {i}: missing \"router_speedup_vs_single\""))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!(
                "dataset {i}: \"router_speedup_vs_single\" must be finite and positive"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> RouteReport {
        RouteReport {
            quick: true,
            available_parallelism: 1,
            shards: 2,
            cache_entries: 16,
            working_set: 24,
            passes: 2,
            top_k: 20,
            datasets: vec![RouteDatasetReport {
                dataset: "slashdot-like".into(),
                n: 2048,
                m: 7220,
                bit_identical: true,
                single: TierRun {
                    requests: 48,
                    wall_s: 0.4,
                    cache_hits: 0,
                    cache_misses: 48,
                },
                router: TierRun {
                    requests: 48,
                    wall_s: 0.1,
                    cache_hits: 48,
                    cache_misses: 0,
                },
            }],
        }
    }

    #[test]
    fn json_round_trips_through_validation() {
        validate_json(&to_json(&tiny_report())).unwrap();
    }

    #[test]
    fn speedup_is_the_qps_ratio() {
        let ds = &tiny_report().datasets[0];
        assert!((ds.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tampered_documents_fail_validation() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let wrong_schema = to_json(&tiny_report()).replace(SCHEMA, "bepi-route-bench/v999");
        assert!(validate_json(&wrong_schema).is_err());
        let one_shard = to_json(&tiny_report()).replace("\"shards\": 2,", "\"shards\": 1,");
        assert!(validate_json(&one_shard).is_err());
        let not_identical =
            to_json(&tiny_report()).replace("\"bit_identical\": true", "\"bit_identical\": false");
        assert!(validate_json(&not_identical).is_err());
        let dropped = to_json(&tiny_report()).replace("\"cache_hits\": 48, ", "");
        assert!(validate_json(&dropped).is_err());
        let no_speedup = to_json(&tiny_report()).replace(
            "\"router_speedup_vs_single\": 4.0000",
            "\"router_speedup_vs_single\": 0",
        );
        assert!(validate_json(&no_speedup).is_err());
    }

    #[test]
    fn table_renders_both_tiers() {
        let s = render_table(&tiny_report());
        assert!(s.contains("single"), "{s}");
        assert!(s.contains("router"), "{s}");
        assert!(s.contains("4.00x"), "{s}");
        assert!(s.contains("bit-identical: true"), "{s}");
    }
}
