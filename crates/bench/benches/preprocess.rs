//! Criterion microbenchmarks for the preprocessing phase (backs
//! Figures 1(a), 5(a), 6(a)): full pipeline per variant, plus the Bear
//! and LU baselines, on a small suite member.

use bepi_core::bear::{Bear, BearConfig};
use bepi_core::lu_method::{LuDecomp, LuDecompConfig};
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_preprocess(c: &mut Criterion) {
    let g = Dataset::Slashdot.generate();
    let k = Dataset::Slashdot.spec().hub_ratio;
    let mut group = c.benchmark_group("preprocess/slashdot-like");
    group.sample_size(10);
    for variant in [BePiVariant::Basic, BePiVariant::Sparse, BePiVariant::Full] {
        let cfg = BePiConfig {
            variant,
            hub_ratio: match variant {
                BePiVariant::Basic => None,
                _ => Some(k),
            },
            ..BePiConfig::default()
        };
        group.bench_function(variant.name(), |b| {
            b.iter_batched(
                || g.clone(),
                |g| black_box(BePi::preprocess(&g, &cfg).unwrap()),
                BatchSize::LargeInput,
            )
        });
    }
    group.bench_function("Bear", |b| {
        b.iter_batched(
            || g.clone(),
            |g| black_box(Bear::preprocess(&g, &BearConfig::default()).unwrap()),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("LU", |b| {
        b.iter_batched(
            || g.clone(),
            |g| black_box(LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
