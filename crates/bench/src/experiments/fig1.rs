//! Figure 1 — the headline comparison: (a) preprocessing time and
//! (b) preprocessed-data memory across preprocessing methods, and
//! (c) query time across all methods, on the full dataset suite.

use crate::harness::{query_seeds, run_method, seed_count, suite, Budget, Method, Metric, Status};
use crate::table::Table;
use bepi_core::prelude::BePiVariant;
use std::fmt::Write as _;

/// Measured outcomes for one dataset.
pub struct DatasetRow {
    /// Dataset short name.
    pub name: &'static str,
    /// `(method, status)` pairs in presentation order.
    pub methods: Vec<(Method, Status)>,
}

/// Runs all Figure 1 methods on the suite and returns per-dataset rows.
pub fn measure() -> Vec<DatasetRow> {
    let methods = [
        Method::BePi(BePiVariant::Full),
        Method::Bear,
        Method::Lu,
        Method::Power,
        Method::Gmres,
    ];
    let budget = Budget::default();
    let mut rows = Vec::new();
    for ds in suite() {
        let spec = ds.spec();
        let g = ds.generate();
        let seeds = query_seeds(&g, seed_count(), 0xF161 ^ spec.seed);
        eprintln!("[fig1] {} (n={}, m={})", spec.name, g.n(), g.m());
        let outcomes = methods
            .iter()
            .map(|&m| {
                eprintln!("[fig1]   {}", m.name());
                (m, run_method(m, &g, spec.hub_ratio, &seeds, &budget))
            })
            .collect();
        rows.push(DatasetRow {
            name: spec.name,
            methods: outcomes,
        });
    }
    rows
}

/// Renders the three sub-figures from measured rows.
pub fn render(rows: &[DatasetRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1 — performance of BePI vs baselines ({} query seeds per dataset)\n",
        seed_count()
    );
    let sections: [(&str, Metric, fn(Method) -> bool); 3] = [
        (
            "(a) Preprocessing time (preprocessing methods)",
            Metric::Preprocess,
            is_preprocessing_method,
        ),
        (
            "(b) Memory for preprocessed data (preprocessing methods)",
            Metric::Memory,
            is_preprocessing_method,
        ),
        ("(c) Query time (all methods)", Metric::Query, all_methods),
    ];
    for (title, metric, filter) in sections {
        let _ = writeln!(out, "{title}");
        let mut header = vec!["dataset".to_string()];
        if let Some(r) = rows.first() {
            header.extend(
                r.methods
                    .iter()
                    .filter(|(m, _)| filter(*m))
                    .map(|(m, _)| m.name().to_string()),
            );
        }
        let mut t = Table::new(header);
        for row in rows {
            let mut cells = vec![row.name.to_string()];
            cells.extend(
                row.methods
                    .iter()
                    .filter(|(m, _)| filter(*m))
                    .map(|(_, s)| s.cell(metric)),
            );
            t.row(cells);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

fn is_preprocessing_method(m: Method) -> bool {
    matches!(m, Method::BePi(_) | Method::Bear | Method::Lu)
}

fn all_methods(_: Method) -> bool {
    true
}

/// Runs and renders Figure 1.
pub fn run() -> String {
    render(&measure())
}
