//! Shared fixtures for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library crate makes
//! the workspace-level `tests/` directory a compilable member and hosts
//! graph fixtures plus a high-precision power-iteration reference used by
//! every end-to-end agreement test.

use bepi_graph::{generators, Graph};
use bepi_solver::power::{power_iteration, PowerConfig};

/// A named graph fixture covering a distinct structural regime.
pub struct Fixture {
    /// Human-readable name (shown in assertion messages).
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
}

/// A zoo of graphs exercising every structural edge case the solvers must
/// handle: power-law, uniform, deadend-heavy, disconnected, tiny, chain.
pub fn fixture_zoo() -> Vec<Fixture> {
    let rmat = generators::rmat(8, 900, generators::RmatParams::default(), 77).unwrap();
    vec![
        Fixture {
            name: "example-fig2",
            graph: generators::example_graph(),
        },
        Fixture {
            name: "rmat-powerlaw",
            graph: rmat.clone(),
        },
        Fixture {
            name: "rmat-deadends",
            graph: generators::inject_deadends(&rmat, 0.35, 3).unwrap(),
        },
        Fixture {
            name: "erdos-renyi",
            graph: generators::erdos_renyi(180, 900, 5).unwrap(),
        },
        Fixture {
            name: "disconnected",
            graph: two_islands(),
        },
        Fixture {
            name: "path-chain",
            graph: generators::path(40),
        },
        Fixture {
            name: "star",
            graph: generators::star(60),
        },
        Fixture {
            name: "cycle",
            graph: generators::cycle(25),
        },
        // Non-power-law structures: SlashBurn's hub assumption fails here,
        // but correctness must not.
        Fixture {
            name: "small-world",
            graph: generators::watts_strogatz(120, 3, 0.2, 9).unwrap(),
        },
        Fixture {
            name: "grid",
            graph: generators::grid(8, 9),
        },
        Fixture {
            name: "complete-bipartite",
            graph: generators::complete_bipartite(6, 10),
        },
    ]
}

/// Two R-MAT islands with no edges between them.
pub fn two_islands() -> Graph {
    let a = generators::erdos_renyi(60, 240, 11).unwrap();
    let b = generators::erdos_renyi(60, 240, 13).unwrap();
    let mut edges = Vec::new();
    for u in 0..60 {
        for v in a.out_neighbors(u) {
            edges.push((u, v));
        }
        for v in b.out_neighbors(u) {
            edges.push((u + 60, v + 60));
        }
    }
    Graph::from_edges(120, &edges).unwrap()
}

/// High-precision RWR reference via power iteration.
pub fn reference_scores(g: &Graph, c: f64, seed: usize) -> Vec<f64> {
    let a = g.row_normalized();
    let mut q = vec![0.0; g.n()];
    q[seed] = 1.0;
    power_iteration(
        &a,
        c,
        &q,
        &PowerConfig {
            tol: 1e-13,
            max_iters: 200_000,
        },
        false,
    )
    .expect("power iteration")
    .r
}

/// Asserts two score vectors agree within `tol`, with a labeled message.
pub fn assert_scores_close(name: &str, got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert!(
            (a - b).abs() < tol,
            "{name}: node {i} differs: {a} vs {b} (tol {tol})"
        );
    }
}
