//! # bepi-walk
//!
//! The approximate-RWR serving tier: fast, *deterministic* score
//! estimates that back the daemon's graceful-degradation lane
//! (`/query?mode=approx` / `mode=auto` under admission pressure) and the
//! offline `bepi query --method walk|tpa` commands.
//!
//! Two engines, both bit-identical for a fixed
//! `(query seed, rng epoch, graph version)` at any thread count and over
//! both owned and memory-mapped CSR storage — the property that keeps
//! approximate responses cacheable byte-for-byte:
//!
//! * [`walk_scores`] — a ThunderRW-style step-interleaved batch walk
//!   engine (see [`walker`]): Monte-Carlo with restart, but walks are
//!   batched and re-grouped per CSR block between rounds so the gathers
//!   that dominate random walks hit warm cache lines. Randomness comes
//!   from per-walk counter-based streams ([`rng`]), so scheduling never
//!   touches a draw. This replaces `bepi_core::approx::monte_carlo`
//!   (kept as the readable reference implementation) for serving.
//! * [`tpa_scores`] — a TPA-style truncated cumulative power iteration
//!   (see [`tpa`]): no sampling noise at all, tail mass accounted in
//!   closed form. The serving default.
//!
//! [`ApproxEngine`] packages either engine with the precomputed operator
//! it needs, built once per graph snapshot and shared read-only across
//! the daemon's workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod tpa;
pub mod walker;

pub use tpa::{tpa_scores, tpa_scores_stable};
pub use walker::walk_scores;

use bepi_core::RwrScores;
use bepi_graph::Graph;
use bepi_sparse::{Csr, Result, SparseError};
use std::sync::Arc;

/// Which estimator an [`ApproxEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxMethod {
    /// Truncated cumulative power iteration ([`tpa_scores`]). The
    /// default: deterministic without any RNG, tight latency envelope.
    Tpa,
    /// Step-interleaved batch random walks ([`walk_scores`]).
    Walk,
}

impl ApproxMethod {
    /// Stable lowercase name (CLI flag values, metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            ApproxMethod::Tpa => "tpa",
            ApproxMethod::Walk => "walk",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<ApproxMethod> {
        match s {
            "tpa" => Some(ApproxMethod::Tpa),
            "walk" => Some(ApproxMethod::Walk),
            _ => None,
        }
    }
}

/// Tuning for [`ApproxEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ApproxConfig {
    /// Which estimator serves approximate queries.
    pub method: ApproxMethod,
    /// Walks per query for [`ApproxMethod::Walk`].
    pub walks: usize,
    /// Maximum series terms for [`ApproxMethod::Tpa`]. The default is
    /// deliberately shallow: the survival-scaled tail correction (see
    /// [`tpa_scores_stable`]) recovers the truncated mass in closed
    /// form, so a handful of matrix products already ranks top-20 with
    /// ≥ 0.97 precision on the anchor graphs while undercutting the
    /// exact solver's p50.
    pub max_terms: usize,
    /// Early-stop tail tolerance for [`ApproxMethod::Tpa`]: iteration
    /// stops once the undelivered mass bound drops below this.
    pub tail_tol: f64,
    /// Optional ranking-stability early stop for [`ApproxMethod::Tpa`]:
    /// stop once the top-`stable_k` node set is unchanged for
    /// [`stable_rounds`](Self::stable_rounds) consecutive terms
    /// (0 disables — the default, since at the default `max_terms` the
    /// per-term top-k selection costs more than it saves; useful when
    /// running the series deep with a large term budget).
    pub stable_k: usize,
    /// Consecutive unchanged-top-k terms required before the stability
    /// stop fires.
    pub stable_rounds: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        Self {
            method: ApproxMethod::Tpa,
            walks: 100_000,
            max_terms: 4,
            tail_tol: 1e-4,
            stable_k: 0,
            stable_rounds: 2,
        }
    }
}

/// A ready-to-serve approximate engine over one immutable graph
/// snapshot: the graph (for the walk engine's gathers) plus the
/// precomputed `Ã^T` operator (for TPA), built once per snapshot.
///
/// Shared read-only across the daemon's worker pool exactly like the
/// exact index; queries take `&self`.
pub struct ApproxEngine {
    graph: Arc<Graph>,
    /// Transpose of the row-normalized adjacency, the TPA operator.
    at: Csr,
    c: f64,
    cfg: ApproxConfig,
}

impl std::fmt::Debug for ApproxEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxEngine")
            .field("nodes", &self.graph.n())
            .field("c", &self.c)
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl ApproxEngine {
    /// Builds the engine for one graph snapshot: validates `c`, and
    /// precomputes the `Ã^T` operator (one transpose — cheap next to the
    /// exact index's full preprocessing, timed under the
    /// `approx.build` phase span).
    pub fn new(graph: Arc<Graph>, c: f64, cfg: ApproxConfig) -> Result<ApproxEngine> {
        if !(c > 0.0 && c < 1.0) {
            return Err(SparseError::Numerical(format!(
                "restart probability must be in (0, 1), got {c}"
            )));
        }
        if cfg.walks == 0 || cfg.max_terms == 0 {
            return Err(SparseError::Numerical(
                "ApproxConfig needs walks >= 1 and max_terms >= 1".into(),
            ));
        }
        let span = bepi_obs::Span::enter("approx.build");
        let at = graph.row_normalized().transpose();
        span.exit();
        Ok(ApproxEngine { graph, at, c, cfg })
    }

    /// Approximate RWR scores for `seed`. `epoch` selects the walk
    /// engine's random replicate (ignored by TPA, but always part of the
    /// response identity so cache keys stay uniform across methods).
    /// Deterministic per `(seed, epoch)` — see the crate docs.
    pub fn query(&self, seed: usize, epoch: u64) -> Result<RwrScores> {
        match self.cfg.method {
            ApproxMethod::Tpa => {
                let _span = bepi_obs::Span::enter("approx.tpa");
                tpa::tpa_scores_stable(
                    &self.at,
                    self.c,
                    seed,
                    self.cfg.max_terms,
                    self.cfg.tail_tol,
                    self.cfg.stable_k,
                    self.cfg.stable_rounds,
                )
            }
            ApproxMethod::Walk => {
                let _span = bepi_obs::Span::enter("approx.walk");
                walk_scores(self.graph.adjacency(), self.c, seed, self.cfg.walks, epoch)
            }
        }
    }

    /// Nodes in the served snapshot.
    pub fn node_count(&self) -> usize {
        self.graph.n()
    }

    /// The restart probability the engine was built with.
    pub fn restart_prob(&self) -> f64 {
        self.c
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ApproxConfig {
        &self.cfg
    }

    /// The graph snapshot the engine serves.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn engine_dispatches_both_methods_deterministically() {
        let g = Arc::new(generators::rmat(7, 500, Default::default(), 61).unwrap());
        for method in [ApproxMethod::Tpa, ApproxMethod::Walk] {
            let cfg = ApproxConfig {
                method,
                walks: 3_000,
                ..ApproxConfig::default()
            };
            let engine = ApproxEngine::new(Arc::clone(&g), 0.05, cfg).unwrap();
            let a = engine.query(5, 2).unwrap();
            let b = engine.query(5, 2).unwrap();
            assert_eq!(a.scores, b.scores, "{method:?} must be deterministic");
            let total: f64 = a.scores.iter().sum();
            assert!(total > 0.0 && total <= 1.0 + 1e-9, "{method:?}: {total}");
        }
    }

    #[test]
    fn tpa_ranking_agrees_with_walks_on_top_nodes() {
        let g = Arc::new(generators::erdos_renyi(80, 600, 13).unwrap());
        let tpa = ApproxEngine::new(Arc::clone(&g), 0.1, ApproxConfig::default())
            .unwrap()
            .query(3, 0)
            .unwrap();
        let walk = ApproxEngine::new(
            Arc::clone(&g),
            0.1,
            ApproxConfig {
                method: ApproxMethod::Walk,
                walks: 50_000,
                ..ApproxConfig::default()
            },
        )
        .unwrap()
        .query(3, 0)
        .unwrap();
        let top = |r: &RwrScores| {
            let mut t = r.top_k(5);
            t.sort_unstable();
            t
        };
        let (t1, t2) = (top(&tpa), top(&walk));
        let overlap = t1.iter().filter(|n| t2.contains(n)).count();
        assert!(overlap >= 3, "tpa {t1:?} vs walk {t2:?}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = Arc::new(generators::erdos_renyi(10, 20, 1).unwrap());
        assert!(ApproxEngine::new(Arc::clone(&g), 0.0, ApproxConfig::default()).is_err());
        assert!(ApproxEngine::new(
            Arc::clone(&g),
            0.1,
            ApproxConfig {
                walks: 0,
                ..ApproxConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn method_names_round_trip() {
        for m in [ApproxMethod::Tpa, ApproxMethod::Walk] {
            assert_eq!(ApproxMethod::parse(m.name()), Some(m));
        }
        assert_eq!(ApproxMethod::parse("exact"), None);
    }
}
