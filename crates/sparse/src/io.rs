//! Matrix Market and whitespace edge-list IO.
//!
//! The paper's datasets ship as edge lists; Matrix Market is the lingua
//! franca for exchanging the preprocessed sparse matrices.

use crate::error::SparseError;
use crate::{Coo, Csr, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a MatrixMarket `coordinate real general` stream into COO.
///
/// Supports `%` comment lines and 1-based indices per the format spec.
/// `pattern` matrices get value 1.0 per entry.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty stream".into()))??;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate") {
        return Err(SparseError::Parse(format!(
            "unsupported MatrixMarket header: {header}"
        )));
    }
    let pattern = header_lc.contains("pattern");
    if header_lc.contains("complex") {
        return Err(SparseError::Parse("complex matrices unsupported".into()));
    }
    let symmetric = header_lc.contains("symmetric");

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let mut it = size_line.split_whitespace();
    let nrows: usize = parse_field(it.next(), "nrows")?;
    let ncols: usize = parse_field(it.next(), "ncols")?;
    let nnz: usize = parse_field(it.next(), "nnz")?;

    let mut coo = Coo::with_capacity(nrows, ncols, if symmetric { nnz * 2 } else { nnz })?;
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = parse_field(it.next(), "row")?;
        let c: usize = parse_field(it.next(), "col")?;
        let v: f64 = if pattern {
            1.0
        } else {
            parse_field(it.next(), "value")?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse(
                "MatrixMarket indices are 1-based; found 0".into(),
            ));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(coo)
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str) -> Result<T> {
    field
        .ok_or_else(|| SparseError::Parse(format!("missing field {name}")))?
        .parse()
        .map_err(|_| SparseError::Parse(format!("invalid {name}: {field:?}")))
}

/// Writes a CSR matrix as MatrixMarket `coordinate real general`.
pub fn write_matrix_market<W: Write>(writer: W, a: &Csr) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {v:.17e}", r + 1, c + 1)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a whitespace-separated edge list (`src dst` or `src dst weight`
/// per line, `#`/`%` comments) into COO; unweighted lines get value 1.0.
/// Node count is `max(id) + 1` unless `n` is given.
pub fn read_edge_list<R: Read>(reader: R, n: Option<usize>) -> Result<Coo> {
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut max_id = 0usize;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let s: usize = parse_field(it.next(), "src")?;
        let d: usize = parse_field(it.next(), "dst")?;
        let w: f64 = match it.next() {
            Some(field) => field
                .parse()
                .map_err(|_| SparseError::Parse(format!("invalid weight: {field:?}")))?,
            None => 1.0,
        };
        max_id = max_id.max(s).max(d);
        edges.push((s as u32, d as u32, w));
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    let mut coo = Coo::with_capacity(n, n, edges.len())?;
    for (s, d, w) in edges {
        coo.push(s as usize, d as usize, w)?;
    }
    Ok(coo)
}

/// Writes a graph adjacency matrix as a whitespace edge list (`src dst`
/// per line, entries with weight ≠ 1 as `src dst weight`).
pub fn write_edge_list<W: Write>(writer: W, a: &Csr) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} nodes, {} edges", a.nrows().max(a.ncols()), a.nnz())?;
    for (r, c, v) in a.iter() {
        if v == 1.0 {
            writeln!(w, "{r} {c}")?;
        } else {
            writeln!(w, "{r} {c} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Convenience: reads MatrixMarket from a file path.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<Coo> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Convenience: writes MatrixMarket to a file path.
pub fn write_matrix_market_file<P: AsRef<Path>>(path: P, a: &Csr) -> Result<()> {
    write_matrix_market(std::fs::File::create(path)?, a)
}

/// Convenience: reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, n: Option<usize>) -> Result<Coo> {
    read_edge_list(std::fs::File::open(path)?, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_roundtrip() {
        let mut coo = Coo::new(3, 3).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(2, 0, -1.0).unwrap();
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap().to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn matrix_market_pattern_and_comments() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        let a = coo.to_csr();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn matrix_market_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 3.0\n\
                    2 1 4.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap().to_csr();
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n1 1 1\n0 0 1.0\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_with_comments_and_explicit_n() {
        let text = "# comment\n0 1\n1 2\n\n2 0\n";
        let coo = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(coo.nrows(), 3);
        assert_eq!(coo.nnz(), 3);
        let coo5 = read_edge_list(text.as_bytes(), Some(5)).unwrap();
        assert_eq!(coo5.nrows(), 5);
    }

    #[test]
    fn empty_edge_list() {
        let coo = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(coo.nrows(), 0);
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn edge_list_malformed_line() {
        assert!(read_edge_list("0\n".as_bytes(), None).is_err());
        assert!(read_edge_list("a b\n".as_bytes(), None).is_err());
        assert!(read_edge_list("0 1 abc\n".as_bytes(), None).is_err());
    }

    #[test]
    fn weighted_edge_list_roundtrip() {
        let mut coo = Coo::new(3, 3).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 2, 2.5).unwrap();
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &a).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("0 1\n"), "{text}");
        assert!(text.contains("1 2 2.5"), "{text}");
        let back = read_edge_list(&buf[..], Some(3)).unwrap().to_csr();
        assert_eq!(back, a);
    }
}
