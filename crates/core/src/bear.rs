//! Bear — the state-of-the-art preprocessing baseline (Shin et al.,
//! SIGMOD 2015; Section 2.3 of the BePI paper).
//!
//! Bear uses the same reordering + block elimination as BePI but inverts
//! the Schur complement *explicitly*: preprocessing stores a dense
//! `S^{-1}` (`O(n2²)` space, `O(n2³)` time), which is precisely what stops
//! it from scaling past mid-size graphs in Figures 1 and 5. Queries are
//! then pure matrix-vector products.

use crate::hmatrix::HPartition;
use crate::rwr::{check_restart_prob, check_seed, RwrScores, RwrSolver};
use crate::schur::schur_complement;
use crate::DEFAULT_RESTART_PROB;
use bepi_graph::Graph;
use bepi_solver::{BlockLu, DenseLu};
use bepi_sparse::{Csr, Dense, MemBytes, Permutation, Result, SparseError};
use std::time::{Duration, Instant};

/// Configuration of a Bear preprocessing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BearConfig {
    /// Restart probability.
    pub c: f64,
    /// SlashBurn hub ratio (the Bear paper uses 0.001).
    pub hub_ratio: f64,
    /// Refuse to invert `S` when `n2` exceeds this bound — the stand-in
    /// for the paper's 24-hour / 500 GB gates (bars "omitted" in Fig. 1).
    pub max_hub_count: usize,
}

impl Default for BearConfig {
    fn default() -> Self {
        Self {
            c: DEFAULT_RESTART_PROB,
            hub_ratio: 0.001,
            max_hub_count: 4_000,
        }
    }
}

/// A preprocessed Bear instance.
#[derive(Debug, Clone)]
pub struct Bear {
    config: BearConfig,
    perm: Permutation,
    n1: usize,
    n2: usize,
    n3: usize,
    h11_lu: BlockLu,
    /// The dense inverse Schur complement — Bear's memory hog.
    s_inv: Dense,
    h12: Csr,
    h21: Csr,
    h31: Csr,
    h32: Csr,
    /// Preprocessing wall-clock time.
    pub preprocess_time: Duration,
}

impl Bear {
    /// Runs Bear's preprocessing phase.
    ///
    /// # Errors
    /// Besides numerical failures, returns [`SparseError::Numerical`] when
    /// `n2 > max_hub_count` — the "out of budget" condition the harness
    /// reports as `o.o.m.`.
    pub fn preprocess(g: &Graph, config: &BearConfig) -> Result<Self> {
        check_restart_prob(config.c)?;
        let start = Instant::now();
        let part = HPartition::build(g, config.c, config.hub_ratio)?;
        if part.n2 > config.max_hub_count {
            return Err(SparseError::Numerical(format!(
                "Bear out of budget: n2 = {} exceeds cap {} (dense S^-1 would need {} bytes)",
                part.n2,
                config.max_hub_count,
                part.n2 * part.n2 * 8
            )));
        }
        let h11_lu = BlockLu::factor(&part.h11, &part.block_sizes)?;
        let s = schur_complement(&part, &h11_lu)?;
        let s_inv = DenseLu::factor(&s.to_dense())?.inverse()?;
        let HPartition {
            perm,
            n1,
            n2,
            n3,
            h12,
            h21,
            h31,
            h32,
            ..
        } = part;
        Ok(Self {
            config: *config,
            perm,
            n1,
            n2,
            n3,
            h11_lu,
            s_inv,
            h12,
            h21,
            h31,
            h32,
            preprocess_time: start.elapsed(),
        })
    }

    /// Hub count (dimension of the dense `S^{-1}`).
    pub fn n2(&self) -> usize {
        self.n2
    }
}

impl RwrSolver for Bear {
    fn name(&self) -> &'static str {
        "Bear"
    }

    fn node_count(&self) -> usize {
        self.n1 + self.n2 + self.n3
    }

    fn query(&self, seed: usize) -> Result<RwrScores> {
        let n = self.node_count();
        check_seed(seed, n)?;
        let c = self.config.c;
        let l = self.n1 + self.n2;
        let seed_new = self.perm.apply(seed);
        let mut q1 = vec![0.0; self.n1];
        let mut q2 = vec![0.0; self.n2];
        let mut q3 = vec![0.0; self.n3];
        if seed_new < self.n1 {
            q1[seed_new] = 1.0;
        } else if seed_new < l {
            q2[seed_new - self.n1] = 1.0;
        } else {
            q3[seed_new - l] = 1.0;
        }

        let cq1: Vec<f64> = q1.iter().map(|v| c * v).collect();
        let t = self.h11_lu.solve_vec(&cq1)?;
        let h21t = self.h21.mul_vec(&t)?;
        let q2_hat: Vec<f64> = q2.iter().zip(&h21t).map(|(qv, hv)| c * qv - hv).collect();
        // Bear: r2 = S^{-1} q̂2 directly (Equation 7).
        let r2 = self.s_inv.mul_vec(&q2_hat)?;

        let h12r2 = self.h12.mul_vec(&r2)?;
        let rhs1: Vec<f64> = cq1.iter().zip(&h12r2).map(|(a, b)| a - b).collect();
        let r1 = self.h11_lu.solve_vec(&rhs1)?;

        let h31r1 = self.h31.mul_vec(&r1)?;
        let h32r2 = self.h32.mul_vec(&r2)?;
        let r3: Vec<f64> = q3
            .iter()
            .zip(h31r1.iter().zip(&h32r2))
            .map(|(qv, (a, b))| c * qv - a - b)
            .collect();

        let mut r = Vec::with_capacity(n);
        r.extend_from_slice(&r1);
        r.extend_from_slice(&r2);
        r.extend_from_slice(&r3);
        Ok(RwrScores {
            scores: self.perm.unpermute_vec(&r)?,
            iterations: 0,
            residual: 0.0,
        })
    }

    fn preprocessed_bytes(&self) -> usize {
        self.h11_lu.mem_bytes()
            + self.s_inv.mem_bytes()
            + self.h12.mem_bytes()
            + self.h21.mem_bytes()
            + self.h31.mem_bytes()
            + self.h32.mem_bytes()
            + self.perm.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bepi::{BePi, BePiConfig};
    use bepi_graph::generators;

    #[test]
    fn matches_bepi_solution() {
        let g = generators::rmat(8, 800, generators::RmatParams::default(), 3).unwrap();
        let bear = Bear::preprocess(&g, &BearConfig::default()).unwrap();
        let bepi = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        for seed in [0usize, 17, 200] {
            let a = bear.query(seed).unwrap();
            let b = bepi.query(seed).unwrap();
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bear_uses_more_memory_than_bepi() {
        // The whole point of the paper: dense S^{-1} dominates.
        let g = generators::rmat(9, 2_500, generators::RmatParams::default(), 5).unwrap();
        let bear = Bear::preprocess(&g, &BearConfig::default()).unwrap();
        let bepi = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(
            bear.preprocessed_bytes() > bepi.preprocessed_bytes(),
            "bear {} vs bepi {}",
            bear.preprocessed_bytes(),
            bepi.preprocessed_bytes()
        );
    }

    #[test]
    fn hub_cap_triggers_out_of_budget() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 11).unwrap();
        let cfg = BearConfig {
            max_hub_count: 1,
            ..BearConfig::default()
        };
        let err = Bear::preprocess(&g, &cfg).unwrap_err();
        assert!(err.to_string().contains("out of budget"));
    }

    #[test]
    fn query_has_zero_iterations() {
        let g = generators::erdos_renyi(100, 500, 9).unwrap();
        let bear = Bear::preprocess(&g, &BearConfig::default()).unwrap();
        assert_eq!(bear.query(3).unwrap().iterations, 0);
    }
}
