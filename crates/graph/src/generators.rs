//! Random and deterministic graph generators.
//!
//! R-MAT is the workhorse: it produces the power-law, hub-and-spoke
//! structure that SlashBurn (and hence BePI's reordering) exploits, and is
//! the standard synthetic stand-in for graphs like Twitter or Friendster.
//! All generators are deterministic given a seed.

use crate::graph::Graph;
use bepi_sparse::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a directed Erdős–Rényi graph `G(n, m)`: `m` distinct directed
/// edges (no self-loops) chosen uniformly.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Result<Graph> {
    assert!(n >= 2 || m == 0, "need at least two nodes for edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && seen.insert((u as u64) * n as u64 + v as u64) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// R-MAT parameters: recursive quadrant probabilities `(a, b, c, d)`,
/// `a + b + c + d = 1`. The classic skew `(0.57, 0.19, 0.19, 0.05)`
/// yields power-law in/out degrees with pronounced hubs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// Generates a directed R-MAT graph with `2^scale` nodes and (up to) `m`
/// edges; duplicate edges collapse, self-loops are dropped, so the final
/// edge count is slightly below `m` — exactly as with real R-MAT tooling.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Result<Graph> {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "R-MAT quadrant probabilities must sum to 1, got {sum}"
    );
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            // Slight parameter noise per level avoids degenerate striping.
            let roll: f64 = rng.random();
            if roll < params.a {
                // top-left: neither bit set
            } else if roll < params.a + params.b {
                v |= 1;
            } else if roll < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Generates a directed preferential-attachment graph: nodes arrive in
/// order, each adding `edges_per_node` out-edges to targets drawn
/// proportionally to (1 + in-degree). Early nodes become hubs; node 0..m0
/// seed the process.
pub fn preferential_attachment(n: usize, edges_per_node: usize, seed: u64) -> Result<Graph> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * edges_per_node);
    // Repeated-target list implements the preferential distribution.
    let mut targets: Vec<usize> = vec![0];
    for u in 1..n {
        for _ in 0..edges_per_node {
            let v = targets[rng.random_range(0..targets.len())];
            if v != u {
                edges.push((u, v));
                targets.push(v);
            }
        }
        targets.push(u);
    }
    Graph::from_edges(n, &edges)
}

/// Removes all out-edges from a random `fraction` of nodes, turning them
/// into deadends — the paper's graphs have 0.2 %–42 % deadends (Table 2),
/// and the deadend reordering of Section 3.2.1 needs them present.
pub fn inject_deadends(g: &Graph, fraction: f64, seed: u64) -> Result<Graph> {
    assert!((0.0..=1.0).contains(&fraction));
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kill = vec![false; n];
    let target = ((n as f64) * fraction).round() as usize;
    let mut killed = 0usize;
    // Reservoir-free: random draws until enough distinct nodes are marked.
    while killed < target {
        let u = rng.random_range(0..n);
        if !kill[u] {
            kill[u] = true;
            killed += 1;
        }
    }
    let mut edges = Vec::with_capacity(g.m());
    for u in 0..n {
        if kill[u] {
            continue;
        }
        for v in g.out_neighbors(u) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The 8-node example graph of Figure 2 (reconstructed from the figure:
/// u1 is the query node, u4/u5 bridge to u8, u6/u7 are peripheral).
/// Nodes are 0-indexed: `u1 = 0, …, u8 = 7`. Undirected (both directions).
pub fn example_graph() -> Graph {
    let edges = [
        (0, 1), // u1 - u2
        (0, 2), // u1 - u3
        (0, 3), // u1 - u4
        (0, 4), // u1 - u5
        (3, 7), // u4 - u8
        (4, 7), // u5 - u8
        (1, 2), // u2 - u3
        (1, 5), // u2 - u6
        (1, 6), // u2 - u7
    ];
    Graph::from_undirected_edges(8, &edges).expect("static edges are valid")
}

/// A directed cycle on `n` nodes.
pub fn cycle(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("cycle edges valid")
}

/// A directed path `0 → 1 → … → n-1` (node `n-1` is a deadend).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("path edges valid")
}

/// An undirected star: hub 0 connected to all other nodes.
pub fn star(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
    Graph::from_undirected_edges(n, &edges).expect("star edges valid")
}

/// Generates a Watts–Strogatz small-world graph: an undirected ring
/// lattice where each node connects to its `k_half` nearest neighbors on
/// each side, with each edge's far endpoint rewired with probability
/// `beta`. Useful as a *non*-power-law contrast workload: SlashBurn's
/// hub-and-spoke assumption fails here, which the tests exercise.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> Result<Graph> {
    assert!(n > 2 * k_half, "ring too small for k_half = {k_half}");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut targets: Vec<std::collections::HashSet<usize>> =
        (0..n).map(|_| std::collections::HashSet::new()).collect();
    for u in 0..n {
        for d in 1..=k_half {
            let v = (u + d) % n;
            let v = if rng.random::<f64>() < beta {
                // Rewire to a uniform non-self target.
                let mut w = rng.random_range(0..n);
                while w == u {
                    w = rng.random_range(0..n);
                }
                w
            } else {
                v
            };
            targets[u].insert(v);
            targets[v].insert(u);
        }
    }
    let mut edges = Vec::new();
    for (u, ts) in targets.iter().enumerate() {
        for &v in ts {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A directed 2-D grid (4-neighborhood, edges in both directions) of
/// `rows × cols` nodes; node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut edges = Vec::with_capacity(rows * cols * 4);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                edges.push((id, id + 1));
                edges.push((id + 1, id));
            }
            if r + 1 < rows {
                edges.push((id, id + cols));
                edges.push((id + cols, id));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges valid")
}

/// The complete bipartite graph `K_{a,b}` (both directions): parts are
/// nodes `0..a` and `a..a+b`. The classic worst case for hub detection —
/// every node is a "hub" of the opposite part.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b * 2);
    for u in 0..a {
        for v in a..a + b {
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    Graph::from_edges(a + b, &edges).expect("bipartite edges valid")
}

/// The complete directed graph on `n` nodes (no self-loops).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("complete edges valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_deterministic_and_sized() {
        let g1 = erdos_renyi(50, 200, 7).unwrap();
        let g2 = erdos_renyi(50, 200, 7).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(g1.m(), 200);
        assert_eq!(g1.n(), 50);
        // No self-loops.
        for u in 0..g1.n() {
            assert_eq!(g1.adjacency().get(u, u), 0.0);
        }
    }

    #[test]
    fn erdos_renyi_caps_at_max_edges() {
        let g = erdos_renyi(3, 100, 1).unwrap();
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8_000, RmatParams::default(), 42).unwrap();
        assert_eq!(g.n(), 1024);
        assert!(g.m() > 4_000, "got {} edges", g.m());
        // Power-law check: the max total degree should dwarf the average.
        let degs = g.total_degrees();
        let max = *degs.iter().max().unwrap() as f64;
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            max > 8.0 * avg,
            "R-MAT should have hubs: max {max}, avg {avg}"
        );
    }

    #[test]
    fn rmat_deterministic() {
        let a = rmat(8, 1000, RmatParams::default(), 5).unwrap();
        let b = rmat(8, 1000, RmatParams::default(), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_params() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
        };
        let _ = rmat(4, 10, p, 0);
    }

    #[test]
    fn preferential_attachment_hubs_are_early() {
        let g = preferential_attachment(300, 3, 11).unwrap();
        let degs = g.in_degrees();
        let early: usize = degs[..30].iter().sum();
        let late: usize = degs[270..].iter().sum();
        assert!(early > late * 3, "early {early}, late {late}");
    }

    #[test]
    fn inject_deadends_hits_target_fraction() {
        let g = erdos_renyi(200, 2000, 3).unwrap();
        let d = inject_deadends(&g, 0.25, 9).unwrap();
        assert!(d.deadend_count() >= 50, "deadends: {}", d.deadend_count());
        assert_eq!(d.n(), g.n());
        assert!(d.m() < g.m());
    }

    #[test]
    fn inject_deadends_zero_fraction_is_identity() {
        let g = erdos_renyi(50, 100, 3).unwrap();
        let d = inject_deadends(&g, 0.0, 1).unwrap();
        assert_eq!(d, g);
    }

    #[test]
    fn example_graph_shape() {
        let g = example_graph();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 18); // 9 undirected edges
        assert_eq!(g.deadend_count(), 0);
        // u1 (node 0) is the highest-degree node, as drawn.
        let degs = g.out_degrees();
        assert_eq!(degs[0], *degs.iter().max().unwrap());
    }

    #[test]
    fn watts_strogatz_degree_and_connectivity() {
        let g = watts_strogatz(100, 3, 0.1, 5).unwrap();
        assert_eq!(g.n(), 100);
        // Symmetric by construction.
        for (r, c, _) in g.adjacency().iter() {
            assert!(g.adjacency().get(c, r) > 0.0, "edge ({r},{c}) not mirrored");
        }
        // Degrees stay near 2*k_half: no hubs.
        let degs = g.out_degrees();
        let max = *degs.iter().max().unwrap();
        assert!(max <= 14, "small-world graph grew a hub: {max}");
        assert_eq!(g.deadend_count(), 0);
    }

    #[test]
    fn watts_strogatz_beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1).unwrap();
        for u in 0..20 {
            assert_eq!(g.out_degree(u), 4, "node {u}");
        }
    }

    #[test]
    fn watts_strogatz_deterministic() {
        assert_eq!(
            watts_strogatz(50, 2, 0.3, 9).unwrap(),
            watts_strogatz(50, 2, 0.3, 9).unwrap()
        );
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        // Interior node has degree 4, corner 2.
        assert_eq!(g.out_degree(5), 4); // (1,1)
        assert_eq!(g.out_degree(0), 2); // corner
        assert_eq!(g.m(), 2 * (3 * 3 + 2 * 4)); // 2*(rows*(cols-1) + (rows-1)*cols)
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 24);
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.out_degree(4), 3);
        // No intra-part edges.
        assert_eq!(g.adjacency().get(0, 1), 0.0);
        assert_eq!(g.adjacency().get(4, 5), 0.0);
    }

    #[test]
    fn utility_graphs() {
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(5).deadend_count(), 0);
        let p = path(4);
        assert_eq!(p.m(), 3);
        assert_eq!(p.deadends(), vec![3]);
        let s = star(6);
        assert_eq!(s.out_degree(0), 5);
        assert_eq!(s.out_degree(3), 1);
        let k = complete(4);
        assert_eq!(k.m(), 12);
    }
}
