//! The `bepi bench --rebuild` driver: full-vs-incremental rebuild
//! latency, with a machine-readable `BENCH_PR10.json` artifact.
//!
//! The question the artifact answers is whether the symbolic/numeric
//! split pays for itself: **when a small edge batch arrives, how much
//! cheaper is a plan-frozen numeric refactorization than a from-scratch
//! preprocess?** Per anchor graph, one index is preprocessed, and then a
//! sequence of small numeric-safe batches (alternately removing and
//! re-inserting the same original edges, each source keeping out-degree
//! ≥ 2 so no deadend flips) is pushed through both arms:
//!
//! * **full** — `BePi::preprocess` of the updated graph, the price a
//!   rebuild pays without the split (deadend reorder + SlashBurn +
//!   assembly + factorization, every batch);
//! * **incremental** — `classify` + `BePi::refactor` under the frozen
//!   [`bepi_core::SymbolicPlan`], the price the live daemon's fast path
//!   pays.
//!
//! Both arms see the identical updated graph; the incremental arm's
//! result is carried forward as the serving index (exactly what
//! `bepi-live` does), so later batches measure refactor-on-refactor,
//! not refactor-on-pristine. Correctness rides along: every batch must
//! classify numeric-only (`numeric_ok`), and the two arms' scores must
//! agree (`max_score_diff`) — a fast path that answers differently is a
//! regression, not a speedup.
//!
//! The headline gate is [`MIN_SPEEDUP`]: incremental p50 must beat full
//! p50 on **every** anchor graph.

use bepi_core::dynamic::apply_updates;
use bepi_core::rwr::RwrSolver;
use bepi_core::{classify, BePi, BePiConfig, Classification, EdgeUpdate};
use bepi_graph::{Dataset, Graph};
use std::fmt::Write as _;
use std::time::Instant;

use crate::perf::json;

/// Schema tag stamped into (and required from) every rebuild artifact.
pub const SCHEMA: &str = "bepi-rebuild-bench/v1";

/// The gate: incremental p50 must be at least this many times faster
/// than full p50 on every dataset (1.0 = strictly faster).
pub const MIN_SPEEDUP: f64 = 1.0;

/// Score agreement required between the two arms.
pub const MAX_SCORE_DIFF: f64 = 1e-6;

/// Configuration for a [`run`].
#[derive(Debug, Clone)]
pub struct RebuildBenchConfig {
    /// Anchor graphs to measure.
    pub datasets: Vec<Dataset>,
    /// Edge batches pushed through both arms per dataset.
    pub batches: usize,
    /// Edges per batch.
    pub batch_size: usize,
    /// Seeds queried per batch for the score-agreement check.
    pub query_seeds: usize,
    /// Marks the artifact as a reduced smoke run.
    pub quick: bool,
}

impl RebuildBenchConfig {
    /// The CI smoke configuration: smallest anchor graph, few batches.
    pub fn quick() -> Self {
        Self {
            datasets: vec![Dataset::Slashdot],
            batches: 4,
            batch_size: 8,
            query_seeds: 2,
            quick: true,
        }
    }

    /// The full configuration: the Bear-feasible anchor graphs.
    pub fn full() -> Self {
        Self {
            datasets: Dataset::small().to_vec(),
            batches: 8,
            batch_size: 8,
            query_seeds: 3,
            quick: false,
        }
    }
}

/// One arm's per-batch rebuild-latency distribution.
#[derive(Debug, Clone)]
pub struct ArmRun {
    /// Batches in the timed phase.
    pub batches: usize,
    /// Median rebuild latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile rebuild latency, microseconds.
    pub p95_us: f64,
    /// Mean rebuild latency, microseconds.
    pub mean_us: f64,
}

impl ArmRun {
    fn from_samples(mut us: Vec<f64>) -> ArmRun {
        us.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| us[((us.len() - 1) as f64 * q).round() as usize];
        ArmRun {
            batches: us.len(),
            p50_us: pick(0.5),
            p95_us: pick(0.95),
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
        }
    }
}

/// Full-vs-incremental comparison on one dataset.
#[derive(Debug, Clone)]
pub struct RebuildDatasetReport {
    /// Dataset name (the `*-like` anchor-graph label).
    pub dataset: String,
    /// Nodes in the generated graph.
    pub n: usize,
    /// Edges in the generated graph.
    pub m: usize,
    /// Whether every batch classified numeric-only (the fast path).
    pub numeric_ok: bool,
    /// Worst score disagreement between the arms over all batches/seeds.
    pub max_score_diff: f64,
    /// The from-scratch preprocess arm.
    pub full: ArmRun,
    /// The classify + refactor arm.
    pub incremental: ArmRun,
}

impl RebuildDatasetReport {
    /// Full p50 over incremental p50 (how many times faster the
    /// incremental path is; > 1.0 means it wins).
    pub fn speedup(&self) -> f64 {
        if self.incremental.p50_us > 0.0 {
            self.full.p50_us / self.incremental.p50_us
        } else {
            0.0
        }
    }
}

/// A complete rebuild bench run.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// Whether this was the reduced smoke configuration.
    pub quick: bool,
    /// Cores visible to the process when the run started.
    pub available_parallelism: usize,
    /// Edge batches per dataset.
    pub batches: usize,
    /// Edges per batch.
    pub batch_size: usize,
    /// Seeds checked per batch.
    pub query_seeds: usize,
    /// Per-dataset measurements.
    pub datasets: Vec<RebuildDatasetReport>,
}

/// Picks `batch_size` edges with distinct sources, every source keeping
/// out-degree ≥ 2 after removal (out-degree ≥ 3 before), so removing
/// and re-inserting them is always a numeric-only change.
fn pick_safe_edges(g: &Graph, batch_size: usize) -> Result<Vec<(usize, usize)>, String> {
    let mut edges = Vec::with_capacity(batch_size);
    for u in 0..g.n() {
        if g.out_degree(u) >= 3 {
            let v = g.out_neighbors(u).next().expect("degree >= 3");
            edges.push((u, v));
            if edges.len() == batch_size {
                return Ok(edges);
            }
        }
    }
    Err(format!(
        "graph has only {} sources with out-degree >= 3, need {batch_size}",
        edges.len()
    ))
}

/// Runs the full-vs-incremental rebuild workload, entirely in-process.
pub fn run(cfg: &RebuildBenchConfig) -> Result<RebuildReport, String> {
    let mut datasets = Vec::with_capacity(cfg.datasets.len());
    for &ds in &cfg.datasets {
        let spec = ds.spec();
        let g = spec.generate();
        let bcfg = BePiConfig {
            hub_ratio: Some(spec.hub_ratio),
            ..BePiConfig::default()
        };
        let base = BePi::preprocess(&g, &bcfg).map_err(|e| format!("{}: {e}", spec.name))?;
        let plan = base.symbolic_plan();
        let edges = pick_safe_edges(&g, cfg.batch_size)?;
        let stride = (g.n() / cfg.query_seeds.max(1)).max(1);
        let seeds: Vec<usize> = (0..cfg.query_seeds).map(|i| (i * stride) % g.n()).collect();

        let mut full_us = Vec::with_capacity(cfg.batches);
        let mut incr_us = Vec::with_capacity(cfg.batches);
        let mut max_score_diff: f64 = 0.0;
        let mut cur_graph = g.clone();
        let mut cur_solver = base;
        for b in 0..cfg.batches {
            // Even batches remove the safe edges, odd batches put them
            // back — the graph oscillates one small step around the
            // original, the way a live stream of corrections would.
            let updates: Vec<EdgeUpdate> = edges
                .iter()
                .map(|&(u, v)| {
                    if b % 2 == 0 {
                        EdgeUpdate::Remove(u, v)
                    } else {
                        EdgeUpdate::Insert(u, v)
                    }
                })
                .collect();
            let sources: Vec<usize> = edges.iter().map(|&(u, _)| u).collect();
            let new_graph = apply_updates(&cur_graph, &updates)
                .map_err(|e| format!("{} batch {b}: {e}", spec.name))?;

            let start = Instant::now();
            let full = BePi::preprocess(&new_graph, &bcfg)
                .map_err(|e| format!("{} batch {b} full: {e}", spec.name))?;
            full_us.push(start.elapsed().as_secs_f64() * 1e6);

            let start = Instant::now();
            let incremental = match classify(&plan, &cur_graph, &new_graph, &sources) {
                Classification::NumericOnly(dirty) => cur_solver
                    .refactor(&new_graph, &dirty)
                    .map_err(|e| format!("{} batch {b} refactor: {e}", spec.name))?,
                Classification::Structural(why) => {
                    return Err(format!(
                        "{} batch {b}: expected numeric-only, classified structural: {why}",
                        spec.name
                    ));
                }
            };
            incr_us.push(start.elapsed().as_secs_f64() * 1e6);

            for &seed in &seeds {
                let a = full
                    .query(seed)
                    .map_err(|e| format!("{} full query {seed}: {e}", spec.name))?;
                let b = incremental
                    .query(seed)
                    .map_err(|e| format!("{} incremental query {seed}: {e}", spec.name))?;
                let diff = a
                    .scores
                    .iter()
                    .zip(&b.scores)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
                max_score_diff = max_score_diff.max(diff);
            }

            cur_graph = new_graph;
            cur_solver = incremental;
        }

        // A structural batch has already errored out above, so every
        // surviving batch took the fast path.
        datasets.push(RebuildDatasetReport {
            dataset: spec.name.to_string(),
            n: g.n(),
            m: g.m(),
            numeric_ok: true,
            max_score_diff,
            full: ArmRun::from_samples(full_us),
            incremental: ArmRun::from_samples(incr_us),
        });
    }
    Ok(RebuildReport {
        quick: cfg.quick,
        available_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        batches: cfg.batches,
        batch_size: cfg.batch_size,
        query_seeds: cfg.query_seeds,
        datasets,
    })
}

/// Renders the human-readable comparison table.
pub fn render_table(report: &RebuildReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bepi bench --rebuild ({} cores visible, {} batches x {} edges{})",
        report.available_parallelism,
        report.batches,
        report.batch_size,
        if report.quick { ", quick" } else { "" }
    );
    for ds in &report.datasets {
        let _ = writeln!(
            out,
            "\n{} (n = {}, m = {}, numeric-ok: {}, max score diff: {:.2e})",
            ds.dataset, ds.n, ds.m, ds.numeric_ok, ds.max_score_diff
        );
        let mut table =
            crate::table::Table::new(vec!["arm", "batches", "p50", "p95", "mean", "speedup"]);
        for (arm, run) in [("full", &ds.full), ("incremental", &ds.incremental)] {
            table.row(vec![
                arm.to_string(),
                run.batches.to_string(),
                format!("{:.1}us", run.p50_us),
                format!("{:.1}us", run.p95_us),
                format!("{:.1}us", run.mean_us),
                if arm == "incremental" {
                    format!("{:.2}x", ds.speedup())
                } else {
                    "-".to_string()
                },
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

/// Serializes a report to the `bepi-rebuild-bench/v1` JSON document.
pub fn to_json(report: &RebuildReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"quick\": {},", report.quick);
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        report.available_parallelism
    );
    let _ = writeln!(out, "  \"batches\": {},", report.batches);
    let _ = writeln!(out, "  \"batch_size\": {},", report.batch_size);
    let _ = writeln!(out, "  \"query_seeds\": {},", report.query_seeds);
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", ds.dataset);
        let _ = writeln!(out, "      \"n\": {},", ds.n);
        let _ = writeln!(out, "      \"m\": {},", ds.m);
        let _ = writeln!(out, "      \"numeric_ok\": {},", ds.numeric_ok);
        let _ = writeln!(out, "      \"max_score_diff\": {:e},", ds.max_score_diff);
        for (arm, run) in [("full", &ds.full), ("incremental", &ds.incremental)] {
            let _ = writeln!(
                out,
                "      \"{arm}\": {{\"batches\": {}, \"p50_us\": {:.2}, \
                 \"p95_us\": {:.2}, \"mean_us\": {:.2}}},",
                run.batches, run.p50_us, run.p95_us, run.mean_us
            );
        }
        let _ = writeln!(out, "      \"speedup\": {:.4}", ds.speedup());
        out.push_str(if i + 1 < report.datasets.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `bepi-rebuild-bench/v1` document: well-formed JSON,
/// correct schema tag, sane parameters, non-empty datasets each with
/// complete `full`/`incremental` arms, `numeric_ok: true`, score
/// agreement within [`MAX_SCORE_DIFF`], and the headline gate —
/// `speedup` above [`MIN_SPEEDUP`] on every dataset. An incremental
/// path that loses to a from-scratch preprocess is a regression, not a
/// measurement.
pub fn validate_json(text: &str) -> std::result::Result<(), String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    match json::get(obj, "schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" tag".into()),
    }
    json::get(obj, "quick")
        .and_then(|v| v.as_bool())
        .ok_or("missing boolean \"quick\"")?;
    for (key, min) in [
        ("available_parallelism", 1.0),
        ("batches", 2.0),
        ("batch_size", 1.0),
        ("query_seeds", 1.0),
    ] {
        let v = json::get(obj, key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < min {
            return Err(format!("\"{key}\" must be >= {min}"));
        }
    }
    let datasets = json::get(obj, "datasets")
        .and_then(|v| v.as_array())
        .ok_or("missing \"datasets\" array")?;
    if datasets.is_empty() {
        return Err("\"datasets\" must be non-empty".into());
    }
    for (i, ds) in datasets.iter().enumerate() {
        let ds = ds
            .as_object()
            .ok_or_else(|| format!("dataset {i} must be an object"))?;
        json::get(ds, "dataset")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("dataset {i}: missing \"dataset\" name"))?;
        for key in ["n", "m"] {
            json::get(ds, key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("dataset {i}: missing numeric \"{key}\""))?;
        }
        if json::get(ds, "numeric_ok").and_then(|v| v.as_bool()) != Some(true) {
            return Err(format!(
                "dataset {i}: \"numeric_ok\" must be true (every batch must \
                 take the numeric-only fast path)"
            ));
        }
        let diff = json::get(ds, "max_score_diff")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("dataset {i}: missing \"max_score_diff\""))?;
        if !diff.is_finite() || diff > MAX_SCORE_DIFF {
            return Err(format!(
                "dataset {i}: \"max_score_diff\" is {diff:e}, the arms must \
                 agree within {MAX_SCORE_DIFF:e}"
            ));
        }
        for arm in ["full", "incremental"] {
            let a = json::get(ds, arm)
                .and_then(|v| v.as_object())
                .ok_or_else(|| format!("dataset {i}: missing \"{arm}\" object"))?;
            for key in ["batches", "p50_us", "p95_us", "mean_us"] {
                let v = json::get(a, key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("dataset {i} {arm}: missing numeric \"{key}\""))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "dataset {i} {arm}: \"{key}\" must be finite and positive"
                    ));
                }
            }
        }
        let v = json::get(ds, "speedup")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("dataset {i}: missing \"speedup\""))?;
        if !v.is_finite() || v <= MIN_SPEEDUP {
            return Err(format!(
                "dataset {i}: \"speedup\" is {v:.2}, the gate is incremental \
                 p50 beating full p50 (> {MIN_SPEEDUP}x) on every dataset"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> RebuildReport {
        RebuildReport {
            quick: true,
            available_parallelism: 1,
            batches: 4,
            batch_size: 8,
            query_seeds: 2,
            datasets: vec![RebuildDatasetReport {
                dataset: "slashdot-like".into(),
                n: 2048,
                m: 14000,
                numeric_ok: true,
                max_score_diff: 3.0e-12,
                full: ArmRun {
                    batches: 4,
                    p50_us: 120000.0,
                    p95_us: 150000.0,
                    mean_us: 125000.0,
                },
                incremental: ArmRun {
                    batches: 4,
                    p50_us: 6000.0,
                    p95_us: 9000.0,
                    mean_us: 6500.0,
                },
            }],
        }
    }

    #[test]
    fn json_round_trips_through_validation() {
        validate_json(&to_json(&tiny_report())).unwrap();
    }

    #[test]
    fn speedup_is_the_p50_ratio() {
        let ds = &tiny_report().datasets[0];
        assert!((ds.speedup() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tampered_documents_fail_validation() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let wrong_schema = to_json(&tiny_report()).replace(SCHEMA, "bepi-rebuild-bench/v999");
        assert!(validate_json(&wrong_schema).is_err());
        let not_numeric =
            to_json(&tiny_report()).replace("\"numeric_ok\": true", "\"numeric_ok\": false");
        assert!(validate_json(&not_numeric).is_err());
        let disagreeing =
            to_json(&tiny_report()).replace("\"max_score_diff\": 3e-12", "\"max_score_diff\": 0.5");
        assert!(validate_json(&disagreeing).is_err());
        let dropped = to_json(&tiny_report()).replace("\"p95_us\": 150000.00, ", "");
        assert!(validate_json(&dropped).is_err());
        let losing = to_json(&tiny_report()).replace("\"speedup\": 20.0000", "\"speedup\": 0.9000");
        assert!(validate_json(&losing).is_err());
    }

    #[test]
    fn table_renders_both_arms() {
        let s = render_table(&tiny_report());
        assert!(s.contains("full"), "{s}");
        assert!(s.contains("incremental"), "{s}");
        assert!(s.contains("20.00x"), "{s}");
        assert!(s.contains("numeric-ok: true"), "{s}");
    }

    #[test]
    fn quick_run_beats_full_preprocess_and_agrees() {
        // The real workload end-to-end on the smallest anchor, two
        // batches — gates the machinery, not the timings.
        let cfg = RebuildBenchConfig {
            batches: 2,
            ..RebuildBenchConfig::quick()
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.datasets.len(), 1);
        let ds = &report.datasets[0];
        assert!(ds.numeric_ok);
        assert!(
            ds.max_score_diff <= MAX_SCORE_DIFF,
            "arms disagree: {:e}",
            ds.max_score_diff
        );
    }
}
