//! # bepi-par
//!
//! A tiny std-only fork/join layer for the BePI kernels, built on the
//! vendored crossbeam shim (which itself is `std::thread::scope`).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Parallel kernels must be *byte-identical* to the
//!    serial code at any thread count. Everything here is therefore
//!    *partition-and-concatenate*: work is split into ordered ranges,
//!    each range is computed exactly as the serial loop would compute
//!    it, and results are written to (or collected into) positions
//!    fixed by the range order — never by completion order. Floating
//!    point reductions go through fixed-size chunk partials
//!    ([`DETERMINISTIC_CHUNK`]) summed in index order, so the grouping
//!    of additions does not depend on how many threads ran.
//! 2. **Graceful degradation.** At one thread (the default on a
//!    single-core box) every helper runs inline on the caller with no
//!    spawns, no allocation beyond the serial path, and no atomics in
//!    the hot loop.
//! 3. **No pool state.** Threads are scoped and joined before each call
//!    returns; there is no persistent pool to configure, leak, or poison.
//!    The only global state is the thread-count knob.
//!
//! The effective thread count is resolved as: explicit
//! [`set_threads`] override → `BEPI_THREADS` environment variable →
//! process-wide soft default ([`set_default_threads`], used by the
//! daemon to split cores between its worker pool and the kernels) →
//! available parallelism.
//!
//! ```
//! // Ordered fork/join: results come back in task order, not
//! // completion order.
//! let squares = bepi_par::par_join((0..4).map(|i| move || i * i).collect::<Vec<_>>());
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//!
//! // Disjoint mutable chunks: each range of `y` is handed to exactly
//! // one task together with its starting offset.
//! let mut y = vec![0usize; 6];
//! let ranges = bepi_par::even_ranges(y.len(), 3);
//! bepi_par::par_chunks_mut(&mut y, &ranges, |_, start, chunk| {
//!     for (k, slot) in chunk.iter_mut().enumerate() {
//!         *slot = start + k;
//!     }
//! });
//! assert_eq!(y, vec![0, 1, 2, 3, 4, 5]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Fixed chunk length for deterministic floating-point reductions.
///
/// A reduction (dot product, norm) over `n > DETERMINISTIC_CHUNK`
/// elements is computed as per-chunk partial sums — chunk `i` covers
/// `[i * DETERMINISTIC_CHUNK, (i + 1) * DETERMINISTIC_CHUNK)` — summed in
/// chunk order. The grouping depends only on `n`, never on the thread
/// count, so serial and parallel runs produce bit-identical floats.
pub const DETERMINISTIC_CHUNK: usize = 8192;

/// Explicit override installed by [`set_threads`]; `0` = unset.
static EXPLICIT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`with_kernel_threads`]; `0` =
    /// unset. Checked before every process-wide knob so a batch worker
    /// can pin the kernels it calls to one thread without perturbing
    /// concurrent requests on other threads.
    static LOCAL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Soft default installed by [`set_default_threads`]; `0` = unset.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `BEPI_THREADS` parsed once; `0` = absent or unparseable.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("BEPI_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Available parallelism as reported by the OS (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Installs an explicit process-wide kernel thread count (the CLI's
/// `--threads N`). `0` clears the override, falling back to
/// `BEPI_THREADS` / the soft default / available parallelism.
pub fn set_threads(n: usize) {
    EXPLICIT_THREADS.store(n, Ordering::SeqCst);
}

/// Installs a *soft* default used only when neither [`set_threads`] nor
/// `BEPI_THREADS` is set. The daemon uses this to hand each of its `w`
/// workers `available() / w` kernel threads so worker × kernel
/// parallelism never oversubscribes the machine. `0` clears it.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::SeqCst);
}

/// Runs `f` with this thread's kernel thread count pinned to `n`
/// (restored on exit, even on panic). The pin applies only to the
/// calling thread — kernels invoked from *inside* `f` see
/// `get_threads() == n` while every other thread resolves the knobs as
/// usual. `bepi_core::batch` uses this to run each batch worker's
/// kernels single-threaded, so batch × kernel parallelism never
/// oversubscribes the machine (the nested-pool guard).
///
/// `n == 0` is treated as "unset" (the process-wide resolution applies
/// inside `f` too).
pub fn with_kernel_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LOCAL_THREADS.with(|c| c.replace(n)));
    f()
}

/// The effective kernel thread count (always ≥ 1): per-thread pin
/// ([`with_kernel_threads`]) → explicit override → `BEPI_THREADS` →
/// soft default → available parallelism.
pub fn get_threads() -> usize {
    let local = LOCAL_THREADS.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let explicit = EXPLICIT_THREADS.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    let default = DEFAULT_THREADS.load(Ordering::SeqCst);
    if default > 0 {
        return default;
    }
    available()
}

/// Splits `0..len` into at most `parts` contiguous ranges of
/// near-equal *length*. Returns fewer ranges when `len < parts`; returns
/// a single empty range for `len == 0`.
// single_range_in_vec_init guards against `vec![0..n]` meaning
// `(0..n).collect()`; here a one-element Vec<Range> is exactly the intent
// (the degenerate single-partition case).
#[allow(clippy::single_range_in_vec_init)]
pub fn even_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if parts <= 1 || len <= 1 {
        return vec![0..len];
    }
    let parts = parts.min(len);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 1..=parts {
        let end = len * p / parts;
        out.push(start..end);
        start = end;
    }
    out
}

/// Splits `0..prefix.len()-1` items into at most `parts` contiguous
/// ranges of near-equal *weight*, where `prefix` is a non-decreasing
/// prefix-sum of per-item weights (`prefix[i+1] - prefix[i]` = weight of
/// item `i`). A CSR `indptr` array is exactly such a prefix sum over row
/// nnz, which is what makes SpMV row partitions nnz-balanced rather than
/// row-count-balanced.
///
/// Every range is non-empty and the ranges cover all items in order.
#[allow(clippy::single_range_in_vec_init)] // one-element Vec<Range> intended
pub fn balanced_ranges(prefix: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = prefix.len().saturating_sub(1);
    let total = prefix.last().copied().unwrap_or(0);
    if parts <= 1 || n <= 1 || total == 0 {
        return vec![0..n];
    }
    let parts = parts.min(n);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 1..=parts {
        // Leave at least one item for each of the remaining parts.
        let remaining = parts - p;
        let end = if remaining == 0 {
            n
        } else {
            let target = (total as u128 * p as u128 / parts as u128) as usize;
            prefix
                .partition_point(|&v| v < target)
                .max(start + 1)
                .min(n - remaining)
        };
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs the tasks concurrently on scoped threads and returns their
/// results **in task order**. Task 0 runs on the calling thread; with a
/// single task nothing is spawned at all. Panics in a task propagate to
/// the caller after all tasks have been joined.
pub fn par_join<R, F>(tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if tasks.len() <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let mut iter = tasks.into_iter();
    let first = iter.next().expect("len checked above");
    let result = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = iter.map(|f| scope.spawn(move |_| f())).collect();
        let head = first();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(head);
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    });
    match result {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Hands each `ranges[i]` window of `data` to one task as
/// `f(i, range.start, &mut data[range])`, running the tasks on scoped
/// threads. Ranges must be sorted, non-overlapping, and in-bounds
/// (gaps are allowed; those elements are simply not visited). With one
/// range the closure runs inline on the caller.
///
/// This is the write side of partition-and-concatenate: because each
/// output window has a fixed position, the result is independent of
/// scheduling.
///
/// # Panics
///
/// Panics if the ranges overlap, are unsorted, or exceed `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], ranges: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    if ranges.len() <= 1 {
        if let Some(r) = ranges.first() {
            assert!(
                r.start <= r.end && r.end <= data.len(),
                "range out of bounds"
            );
            f(0, r.start, &mut data[r.clone()]);
        }
        return;
    }
    let result = crossbeam::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0usize;
        let f = &f;
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                r.start >= consumed && r.start <= r.end,
                "ranges must be sorted and non-overlapping"
            );
            let skip = r.start - consumed;
            let len = r.end - r.start;
            assert!(skip + len <= rest.len(), "range out of bounds");
            let (_, tail) = rest.split_at_mut(skip);
            let (chunk, tail) = tail.split_at_mut(len);
            rest = tail;
            consumed = r.end;
            let start = r.start;
            scope.spawn(move |_| f(i, start, chunk));
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_and_balance() {
        assert_eq!(even_ranges(0, 4), vec![0..0]);
        assert_eq!(even_ranges(10, 1), vec![0..10]);
        let r = even_ranges(10, 3);
        assert_eq!(r, vec![0..3, 3..6, 6..10]);
        let r = even_ranges(2, 8);
        assert_eq!(r, vec![0..1, 1..2]);
    }

    #[test]
    fn balanced_ranges_follow_weight_not_count() {
        // One heavy item (row) dominating: it gets its own range.
        let prefix = [0usize, 100, 101, 102, 103];
        let r = balanced_ranges(&prefix, 2);
        assert_eq!(r, vec![0..1, 1..4]);
        // Uniform weights degenerate to near-even splits.
        let prefix: Vec<usize> = (0..=8).map(|i| i * 3).collect();
        let r = balanced_ranges(&prefix, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.first().unwrap().start, 0);
        assert_eq!(r.last().unwrap().end, 8);
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert!(!w[0].is_empty() && !w[1].is_empty());
        }
    }

    #[test]
    fn balanced_ranges_handle_empty_and_zero_weight() {
        assert_eq!(balanced_ranges(&[0], 4), vec![0..0]);
        assert_eq!(balanced_ranges(&[0, 0, 0], 4), vec![0..2]);
        // All weight in the last item still yields non-empty ranges.
        let prefix = [0usize, 0, 0, 0, 50];
        let r = balanced_ranges(&prefix, 3);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 4);
        assert!(r.iter().all(|x| !x.is_empty()));
    }

    #[test]
    fn par_join_preserves_task_order() {
        let tasks: Vec<_> = (0..16)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * 10
                }
            })
            .collect();
        let out = par_join(tasks);
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_windows() {
        let mut data = vec![0usize; 100];
        let ranges = even_ranges(100, 7);
        par_chunks_mut(&mut data, &ranges, |_, start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = start + k;
            }
        });
        assert_eq!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_allows_gaps() {
        let mut data = vec![9usize; 10];
        par_chunks_mut(&mut data, &[1..3, 5..6, 8..10], |i, _, chunk| {
            for slot in chunk.iter_mut() {
                *slot = i;
            }
        });
        assert_eq!(data, vec![9, 0, 0, 9, 9, 1, 9, 9, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn par_chunks_mut_rejects_overlap() {
        let mut data = vec![0usize; 10];
        par_chunks_mut(&mut data, &[0..5, 4..10], |_, _, _| {});
    }

    #[test]
    fn par_join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            par_join(vec![
                Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                Box::new(|| panic!("child boom")),
            ]);
        });
        assert!(caught.is_err());
    }

    /// The knob tests mutate process-wide state; serialize them.
    static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn thread_knob_resolution_order() {
        let _guard = KNOB_LOCK.lock().unwrap();
        set_threads(3);
        assert_eq!(get_threads(), 3);
        set_threads(0);
        set_default_threads(2);
        // BEPI_THREADS is unset in the test environment, so the soft
        // default wins over available parallelism.
        if env_threads() == 0 {
            assert_eq!(get_threads(), 2);
        }
        set_default_threads(0);
        assert!(get_threads() >= 1);
    }

    #[test]
    fn thread_local_pin_beats_globals_and_restores() {
        let _guard = KNOB_LOCK.lock().unwrap();
        set_threads(4);
        assert_eq!(get_threads(), 4);
        let inside = with_kernel_threads(1, get_threads);
        assert_eq!(inside, 1);
        // Restored after the closure, including across a panic.
        assert_eq!(get_threads(), 4);
        let caught = std::panic::catch_unwind(|| {
            with_kernel_threads(2, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(get_threads(), 4);
        // The pin is per-thread: a sibling thread still sees the global.
        let sibling = with_kernel_threads(1, || std::thread::spawn(get_threads).join().unwrap());
        assert_eq!(sibling, 4);
        // Zero means "unset", falling through to the globals.
        assert_eq!(with_kernel_threads(0, get_threads), 4);
        set_threads(0);
    }
}
