//! # bepi-route
//!
//! Sharded multi-process serving for BePI: a scatter-gather front tier
//! over N `bepi serve` shard daemons.
//!
//! BePI's preprocessing makes per-query work small, but one daemon
//! process caps throughput at one worker pool and *one response cache*.
//! The v6 mmap index format already lets N processes share a single
//! index through the page cache for free, so horizontal scale-out on
//! one box is just: run N shard daemons over the same file, put a thin
//! router in front. This crate is that router:
//!
//! * [`ring`] — deterministic rendezvous hashing of the seed space onto
//!   shards. Every shard holds the full index, so the ring is a cache
//!   locality policy (N caches behave like one N×-sized cache) and a
//!   deterministic failover order, never a correctness constraint.
//! * [`client`] — a std-only pooled HTTP/1.1 client; the router is the
//!   one client that opts into the daemons' keep-alive support, so
//!   scatter requests multiplex over persistent connections.
//! * [`supervisor`] — process lifecycle: spawn shard children, probe
//!   health, detect a SIGKILLed shard, respawn it, and re-admit it only
//!   once it answers `/version` at the fleet's expected epoch.
//! * [`router`] — the front tier itself: `/query` with bounded retry,
//!   deterministic failover and tail-latency hedging; `/batch` scatter-
//!   gather with per-seed bodies proxied verbatim (bit-identical to a
//!   single daemon) or merged into one fleet-wide top-k; `/version`
//!   advertising the *quorum* graph version so fleet-level epoch
//!   rollouts are zero-downtime; `/route/health` and `/metrics`
//!   (`bepi_shard_healthy`, `bepi_route_retries_total`,
//!   `bepi_hedged_requests_total`, per-shard latency histograms).
//!
//! ```no_run
//! use bepi_route::router::{Router, RouterConfig};
//! use bepi_route::supervisor::{SpawnSpec, Supervisor};
//! use std::time::Duration;
//!
//! let spec = SpawnSpec {
//!     program: "bepi".into(),
//!     index: "graph.bepi".into(),
//!     extra_args: vec!["--mmap".into()],
//! };
//! let supervisor = Supervisor::spawn(spec, 2, Duration::from_secs(10)).unwrap();
//! let handle = Router::start(supervisor, RouterConfig::default()).unwrap();
//! println!("routing on http://{}", handle.local_addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod ring;
pub mod router;
pub mod shard;
pub mod supervisor;
pub mod trace;

pub use client::{AttemptTiming, HttpResponse, ShardClient};
pub use metrics::{merge_expositions, RouteMetrics};
pub use ring::SeedRing;
pub use router::{Router, RouterConfig, RouterHandle};
pub use shard::{quorum_version, ShardState};
pub use supervisor::{SpawnSpec, Supervisor};
pub use trace::{AttemptEntry, AttemptKind, AttemptLog, AttemptOutcome};
