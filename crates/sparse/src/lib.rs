//! # bepi-sparse
//!
//! Sparse and dense matrix substrate for the BePI random-walk-with-restart
//! library (reproduction of Jung et al., *BePI*, SIGMOD 2017).
//!
//! The BePI paper stores every matrix "in a sparse matrix format such as
//! compressed column storage which stores only non-zero entries and their
//! locations" (Section 3.1). This crate provides those formats and the
//! kernels every phase of BePI needs:
//!
//! * [`Coo`] — coordinate (triplet) format, the assembly format.
//! * [`Csr`] — compressed sparse row, the workhorse for SpMV and SpGEMM.
//! * [`Csc`] — compressed sparse column, used by the LU/triangular kernels.
//! * [`Dense`] — row-major dense matrix, used for exact small-graph solves
//!   and for the Bear baseline's explicit `S^{-1}`.
//! * [`Permutation`] — bijective node relabelings with composition, the
//!   output of the reordering methods.
//! * SpMV ([`Csr::mul_vec`], [`Csr::mul_vec_transposed`]), Gustavson SpGEMM
//!   ([`mod@spgemm`]), element-wise ops ([`ops`]), norms ([`norms`]),
//!   Matrix Market / edge-list IO ([`io`]).
//!
//! All index arrays use `u32` (graphs up to 4.29 B nodes would need more,
//! but every dataset in the paper has `n < 2^32`); this halves index memory
//! relative to `usize` on 64-bit targets, which matters because the paper's
//! headline metric is memory for preprocessed data. Exact logical memory of
//! every structure is reported through [`MemBytes`].
//!
//! ```
//! use bepi_sparse::{Coo, MemBytes};
//!
//! let mut coo = Coo::new(3, 3)?;
//! coo.push(0, 1, 2.0)?;
//! coo.push(1, 2, 3.0)?;
//! coo.push(0, 1, 1.0)?; // duplicate: summed on compression
//! let csr = coo.to_csr();
//! assert_eq!(csr.get(0, 1), 3.0);
//! assert_eq!(csr.mul_vec(&[1.0, 1.0, 1.0])?, vec![3.0, 3.0, 0.0]);
//! assert!(csr.mem_bytes() > 0);
//! # Ok::<(), bepi_sparse::SparseError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Index-based loops over multiple parallel arrays are the clearest (and
// often fastest) idiom in the numerical kernels here; the iterator
// rewrites clippy suggests obscure the subscript structure of the math.
#![allow(clippy::needless_range_loop)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod io;
pub mod mem;
pub mod norms;
pub mod ops;
pub mod permute;
pub mod spgemm;
pub mod storage;
pub mod vecops;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::SparseError;
pub use mem::MemBytes;
pub use permute::Permutation;
pub use spgemm::spgemm;
pub use storage::Storage;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
