//! Ablation study (beyond the paper's figures): quantifies BePI's two
//! discretionary design choices —
//!
//! 1. the inner Krylov solver (GMRES, as chosen in the paper, vs
//!    BiCGSTAB, which Section 2.2 notes is equally applicable), and
//! 2. the preconditioner (ILU(0), as chosen in Section 3.5, vs the
//!    diagonal/Jacobi and Neumann-series/SPAI-style alternatives the
//!    paper mentions and rejects).
//!
//! Reported per configuration: average inner iterations and query time.

use crate::harness::{query_seeds, seed_count};
use crate::table::{fmt_secs, Table};
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use std::fmt::Write as _;
use std::time::Instant;

/// Runs the ablation on two mid-size datasets.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation — inner solver × preconditioner ({} seeds)\n",
        seed_count()
    );
    let combos: [(&str, InnerSolver, Option<PrecondKind>); 8] = [
        ("GMRES, none", InnerSolver::Gmres, None),
        (
            "GMRES + Jacobi",
            InnerSolver::Gmres,
            Some(PrecondKind::Jacobi),
        ),
        (
            "GMRES + Neumann(3)",
            InnerSolver::Gmres,
            Some(PrecondKind::Neumann(3)),
        ),
        (
            "GMRES + ILU(0)",
            InnerSolver::Gmres,
            Some(PrecondKind::Ilu0),
        ),
        ("BiCGSTAB, none", InnerSolver::BiCgStab, None),
        (
            "BiCGSTAB + Jacobi",
            InnerSolver::BiCgStab,
            Some(PrecondKind::Jacobi),
        ),
        (
            "BiCGSTAB + Neumann(3)",
            InnerSolver::BiCgStab,
            Some(PrecondKind::Neumann(3)),
        ),
        (
            "BiCGSTAB + ILU(0)",
            InnerSolver::BiCgStab,
            Some(PrecondKind::Ilu0),
        ),
    ];
    for ds in [Dataset::Wikipedia, Dataset::Flickr] {
        let spec = ds.spec();
        let g = ds.generate();
        let seeds = query_seeds(&g, seed_count(), 0xAB1A ^ spec.seed);
        let _ = writeln!(out, "{} (n = {}, m = {}):", spec.name, g.n(), g.m());
        let mut t = Table::new(vec!["configuration", "avg iterations", "avg query"]);
        for (label, inner, precond) in combos {
            eprintln!("[ablation] {} {}", spec.name, label);
            let cfg = BePiConfig {
                variant: if precond.is_some() {
                    BePiVariant::Full
                } else {
                    BePiVariant::Sparse
                },
                inner,
                precond: precond.unwrap_or_default(),
                hub_ratio: Some(spec.hub_ratio),
                ..BePiConfig::default()
            };
            let solver = BePi::preprocess(&g, &cfg).expect("preprocess");
            let t0 = Instant::now();
            let mut iters = 0usize;
            for &s in &seeds {
                iters += solver.query(s).expect("query").iterations;
            }
            let avg_q = t0.elapsed().as_secs_f64() / seeds.len() as f64;
            t.row(vec![
                label.to_string(),
                format!("{:.1}", iters as f64 / seeds.len() as f64),
                fmt_secs(avg_q),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "Note: BiCGSTAB iterations involve two operator applications each; compare wall-clock, not counts."
    );
    out
}
