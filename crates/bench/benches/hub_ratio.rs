//! Criterion microbenchmarks sweeping the hub selection ratio `k`
//! (Figure 8 ablation): end-to-end BePI preprocessing and one query per
//! `k` on the Slashdot stand-in.

use bepi_core::prelude::*;
use bepi_graph::Dataset;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_hub_ratio(c: &mut Criterion) {
    let g = Dataset::Slashdot.generate();
    let seed = 42 % g.n();

    let mut pre = c.benchmark_group("hub_ratio/preprocess");
    pre.sample_size(10);
    for k in [0.01, 0.1, 0.2, 0.3, 0.5] {
        let cfg = BePiConfig {
            hub_ratio: Some(k),
            ..BePiConfig::default()
        };
        pre.bench_function(format!("k{k}"), |b| {
            b.iter_batched(
                || g.clone(),
                |g| black_box(BePi::preprocess(&g, &cfg).unwrap()),
                BatchSize::LargeInput,
            )
        });
    }
    pre.finish();

    let mut q = c.benchmark_group("hub_ratio/query");
    for k in [0.01, 0.1, 0.2, 0.3, 0.5] {
        let cfg = BePiConfig {
            hub_ratio: Some(k),
            ..BePiConfig::default()
        };
        let solver = BePi::preprocess(&g, &cfg).unwrap();
        q.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(solver.query(black_box(seed)).unwrap()))
        });
    }
    q.finish();
}

criterion_group!(benches, bench_hub_ratio);
criterion_main!(benches);
