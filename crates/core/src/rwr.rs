//! The RWR problem definition and the unified solver interface.

use bepi_graph::Graph;
use bepi_sparse::{ops, Csr, Result, SparseError};

/// RWR scores for one query, plus solve statistics.
#[derive(Debug, Clone)]
pub struct RwrScores {
    /// Score per node, in the graph's *original* node numbering.
    pub scores: Vec<f64>,
    /// Inner iterations spent by the method's iterative component
    /// (0 for fully direct methods).
    pub iterations: usize,
    /// Final relative residual reported by the iterative component
    /// (0.0 for fully direct methods).
    pub residual: f64,
}

impl RwrScores {
    /// The `k` best-ranked nodes (descending score, ties by id) —
    /// the personalized ranking of Figure 2.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        bepi_sparse::vecops::top_k_indices(&self.scores, k)
    }
}

/// Interface shared by every RWR method in the evaluation: BePI (all
/// variants), Bear, LU decomposition, power iteration, GMRES, and the
/// dense exact reference.
///
/// Construction (the *preprocessing phase*) is method-specific; querying
/// (the *query phase*) is uniform. `preprocessed_bytes` reports the memory
/// for preprocessed data — the metric of Figures 1(b), 5(b), 6(b).
pub trait RwrSolver {
    /// Human-readable method name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Number of nodes served.
    fn node_count(&self) -> usize;

    /// Computes the RWR score vector for a seed node.
    fn query(&self, seed: usize) -> Result<RwrScores>;

    /// Bytes of preprocessed data kept for the query phase.
    fn preprocessed_bytes(&self) -> usize;
}

/// Validates a seed id against the node count.
pub(crate) fn check_seed(seed: usize, n: usize) -> Result<()> {
    if seed >= n {
        return Err(SparseError::IndexOutOfBounds {
            index: (seed, 0),
            shape: (n, 1),
        });
    }
    Ok(())
}

/// Validates the restart probability `0 < c < 1`.
pub(crate) fn check_restart_prob(c: f64) -> Result<()> {
    if !(c > 0.0 && c < 1.0) {
        return Err(SparseError::Numerical(format!(
            "restart probability must satisfy 0 < c < 1, got {c}"
        )));
    }
    Ok(())
}

/// Builds `H = I − (1−c) Ã^T` for a graph in its current node order.
pub fn build_h(g: &Graph, c: f64) -> Result<Csr> {
    check_restart_prob(c)?;
    let a_norm = g.row_normalized();
    let at = a_norm.transpose();
    ops::identity_minus_scaled(1.0 - c, &at)
}

/// The seed indicator vector `q` (length n, 1.0 at the seed).
pub fn seed_vector(n: usize, seed: usize) -> Result<Vec<f64>> {
    check_seed(seed, n)?;
    let mut q = vec![0.0; n];
    q[seed] = 1.0;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn h_is_diagonally_dominant_for_valid_c() {
        let g = generators::example_graph();
        let h = build_h(&g, 0.05).unwrap();
        assert!(h.is_column_diagonally_dominant());
        let h = build_h(&g, 0.9).unwrap();
        assert!(h.is_column_diagonally_dominant());
    }

    #[test]
    fn h_rows_for_deadends_are_identity_columns() {
        let g = generators::path(3); // node 2 deadend
        let h = build_h(&g, 0.2).unwrap();
        // Column 2 of Ã^T is zero → H column 2 = e2.
        assert_eq!(h.get(2, 2), 1.0);
        assert_eq!(h.get(0, 2), 0.0);
        assert_eq!(h.get(1, 2), 0.0);
        // But H row 2 has -0.8 * Ã^T[2,1].
        assert!((h.get(2, 1) + 0.8).abs() < 1e-15);
    }

    #[test]
    fn invalid_restart_prob_rejected() {
        let g = generators::cycle(3);
        assert!(build_h(&g, 0.0).is_err());
        assert!(build_h(&g, 1.0).is_err());
        assert!(build_h(&g, -0.5).is_err());
    }

    #[test]
    fn seed_vector_shape() {
        let q = seed_vector(4, 2).unwrap();
        assert_eq!(q, vec![0.0, 0.0, 1.0, 0.0]);
        assert!(seed_vector(4, 4).is_err());
    }

    #[test]
    fn top_k_ranks_by_score() {
        let s = RwrScores {
            scores: vec![0.1, 0.4, 0.2],
            iterations: 0,
            residual: 0.0,
        };
        assert_eq!(s.top_k(2), vec![1, 2]);
    }
}
