//! The LU-decomposition baseline (Fujiwara et al., VLDB 2012;
//! Section 2.3 of the BePI paper).
//!
//! Preprocessing: reorder `H` (deadends split off, non-deadend block
//! ordered by ascending degree to limit fill-in), sparse-LU-factor `Hnn`,
//! and store the *inverted* factors `L^{-1}`, `U^{-1}` so queries are two
//! SpMVs: `rn = c U^{-1}(L^{-1} qn)`. The inverted factors of a whole
//! connected graph are nearly dense — the scalability wall the paper
//! shows in Figures 1 and 5.

use crate::rwr::{check_restart_prob, check_seed, RwrScores, RwrSolver};
use crate::DEFAULT_RESTART_PROB;
use bepi_graph::Graph;
use bepi_reorder::{degree_order, reorder_deadends, DegreeOrder};
use bepi_sparse::{ops, Csc, Csr, MemBytes, Permutation, Result, SparseError};
use std::time::{Duration, Instant};

/// Which fill-reducing ordering the LU baseline applies to the
/// non-deadend block before factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LuOrdering {
    /// Ascending total degree (Fujiwara et al.'s primary criterion).
    #[default]
    Degree,
    /// Reverse Cuthill–McKee (bandwidth-reducing ablation alternative).
    Rcm,
    /// No reordering beyond the deadend split (ablation control).
    Natural,
}

/// Configuration of the LU-decomposition baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuDecompConfig {
    /// Restart probability.
    pub c: f64,
    /// Refuse when the non-deadend dimension exceeds this bound — the
    /// inverted triangular factors are `O(l²)`; this is the stand-in for
    /// the paper's memory/time gates.
    pub max_dimension: usize,
    /// Fill-reducing ordering of the non-deadend block.
    pub ordering: LuOrdering,
}

impl Default for LuDecompConfig {
    fn default() -> Self {
        Self {
            c: DEFAULT_RESTART_PROB,
            max_dimension: 20_000,
            ordering: LuOrdering::Degree,
        }
    }
}

/// A preprocessed LU-decomposition instance.
#[derive(Debug, Clone)]
pub struct LuDecomp {
    config: LuDecompConfig,
    perm: Permutation,
    n_live: usize,
    n_dead: usize,
    /// Inverted factors of `Hnn` (stored as CSR for fast SpMV).
    l_inv: Csr,
    u_inv: Csr,
    /// `Hdn` block for the deadend part of a query.
    h_dn: Csr,
    /// Preprocessing wall-clock time.
    pub preprocess_time: Duration,
}

impl LuDecomp {
    /// Runs the preprocessing phase: reorder, factor, invert factors.
    pub fn preprocess(g: &Graph, config: &LuDecompConfig) -> Result<Self> {
        check_restart_prob(config.c)?;
        let start = Instant::now();
        let n = g.n();

        let dr = reorder_deadends(g);
        let l = dr.n_non_deadend;
        if l > config.max_dimension {
            return Err(SparseError::Numerical(format!(
                "LU decomposition out of budget: dimension {l} exceeds cap {} \
                 (inverted factors are O(l²))",
                config.max_dimension
            )));
        }
        // Fill-reducing order of the non-deadend nodes (deadends fixed at
        // the end). Nodes are sorted by their label under the chosen
        // ordering, giving a deterministic combined permutation.
        let fill_order: Permutation = match config.ordering {
            LuOrdering::Degree => degree_order(g, DegreeOrder::Ascending),
            LuOrdering::Rcm => bepi_reorder::rcm_order(g),
            LuOrdering::Natural => Permutation::identity(n),
        };
        let mut live: Vec<u32> = (0..n as u32)
            .filter(|&u| g.out_degree(u as usize) > 0)
            .collect();
        live.sort_by_key(|&u| fill_order.apply(u as usize));
        let mut old_of_new: Vec<u32> = live;
        old_of_new.extend((0..n as u32).filter(|&u| g.out_degree(u as usize) == 0));
        let perm = Permutation::from_old_of_new(old_of_new)?;
        let _ = dr;

        let a = perm.permute_symmetric(g.adjacency())?;
        let mut a_norm = a;
        a_norm.row_normalize();
        let at = a_norm.transpose();
        let h = ops::identity_minus_scaled(1.0 - config.c, &at)?;
        let h_nn = h.slice_block(0..l, 0..l)?;
        let h_dn = h.slice_block(l..n, 0..l)?;

        let lu = bepi_solver::SparseLu::factor(&Csc::from_csr(&h_nn))?;
        let (l_inv_csc, u_inv_csc) = lu.invert_factors();
        Ok(Self {
            config: *config,
            perm,
            n_live: l,
            n_dead: n - l,
            l_inv: l_inv_csc.to_csr(),
            u_inv: u_inv_csc.to_csr(),
            h_dn,
            preprocess_time: start.elapsed(),
        })
    }

    /// Non-zeros of the inverted factors (the baseline's memory driver).
    pub fn factor_nnz(&self) -> usize {
        self.l_inv.nnz() + self.u_inv.nnz()
    }
}

impl RwrSolver for LuDecomp {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn node_count(&self) -> usize {
        self.n_live + self.n_dead
    }

    fn query(&self, seed: usize) -> Result<RwrScores> {
        let n = self.node_count();
        check_seed(seed, n)?;
        let c = self.config.c;
        let seed_new = self.perm.apply(seed);
        let mut qn = vec![0.0; self.n_live];
        let mut qd = vec![0.0; self.n_dead];
        if seed_new < self.n_live {
            qn[seed_new] = c;
        } else {
            qd[seed_new - self.n_live] = c;
        }
        // rn = U^{-1}(L^{-1}(c qn)); rd = c qd − Hdn rn (Equations 3–4).
        let t = self.l_inv.mul_vec(&qn)?;
        let rn = self.u_inv.mul_vec(&t)?;
        let hdn_rn = self.h_dn.mul_vec(&rn)?;
        let rd: Vec<f64> = qd.iter().zip(&hdn_rn).map(|(q, h)| q - h).collect();
        let mut r = rn;
        r.extend_from_slice(&rd);
        Ok(RwrScores {
            scores: self.perm.unpermute_vec(&r)?,
            iterations: 0,
            residual: 0.0,
        })
    }

    fn preprocessed_bytes(&self) -> usize {
        self.l_inv.mem_bytes()
            + self.u_inv.mem_bytes()
            + self.h_dn.mem_bytes()
            + self.perm.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;
    use bepi_solver::power::{power_iteration, PowerConfig};

    fn power_reference(g: &Graph, c: f64, seed: usize) -> Vec<f64> {
        let a = g.row_normalized();
        let q = crate::rwr::seed_vector(g.n(), seed).unwrap();
        power_iteration(
            &a,
            c,
            &q,
            &PowerConfig {
                tol: 1e-13,
                max_iters: 100_000,
            },
            false,
        )
        .unwrap()
        .r
    }

    #[test]
    fn matches_power_iteration() {
        let g = generators::rmat(7, 450, generators::RmatParams::default(), 3).unwrap();
        let g = generators::inject_deadends(&g, 0.15, 4).unwrap();
        let solver = LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap();
        for seed in [0usize, 50, 127] {
            let got = solver.query(seed).unwrap();
            let want = power_reference(&g, 0.05, seed);
            for (a, b) in got.scores.iter().zip(&want) {
                assert!((a - b).abs() < 1e-8, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn deadend_seed_query() {
        let g = generators::path(10);
        let solver = LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap();
        // Node 9 is a deadend; its RWR score vector is c at itself.
        let got = solver.query(9).unwrap();
        assert!((got.scores[9] - 0.05).abs() < 1e-12);
        assert!(got.scores[..9].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn all_orderings_give_identical_scores() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 29).unwrap();
        let reference = LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap();
        let want = reference.query(11).unwrap();
        for ordering in [LuOrdering::Rcm, LuOrdering::Natural] {
            let solver = LuDecomp::preprocess(
                &g,
                &LuDecompConfig {
                    ordering,
                    ..LuDecompConfig::default()
                },
            )
            .unwrap();
            let got = solver.query(11).unwrap();
            for (a, b) in got.scores.iter().zip(&want.scores) {
                assert!((a - b).abs() < 1e-9, "{ordering:?}");
            }
        }
    }

    #[test]
    fn fill_reducing_orderings_beat_natural() {
        // On a power-law graph, degree ordering should produce less fill
        // than no ordering at all (the point of Fujiwara's reordering).
        let g = generators::rmat(9, 2500, generators::RmatParams::default(), 37).unwrap();
        let nat = LuDecomp::preprocess(
            &g,
            &LuDecompConfig {
                ordering: LuOrdering::Natural,
                ..LuDecompConfig::default()
            },
        )
        .unwrap();
        let deg = LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap();
        assert!(
            deg.factor_nnz() < nat.factor_nnz(),
            "degree {} vs natural {}",
            deg.factor_nnz(),
            nat.factor_nnz()
        );
    }

    #[test]
    fn dimension_cap_triggers_out_of_budget() {
        let g = generators::erdos_renyi(100, 400, 1).unwrap();
        let cfg = LuDecompConfig {
            max_dimension: 10,
            ..LuDecompConfig::default()
        };
        assert!(LuDecomp::preprocess(&g, &cfg).is_err());
    }

    #[test]
    fn inverted_factors_fill_in() {
        // A connected graph's inverted factors are denser than H itself.
        let g = generators::erdos_renyi(150, 900, 8).unwrap();
        let solver = LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap();
        assert!(solver.factor_nnz() > g.m());
        assert!(solver.preprocessed_bytes() > 0);
    }
}
