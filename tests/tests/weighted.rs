//! Weighted-graph support: RWR is defined through the row-normalized
//! adjacency matrix, so edge weights shape the walk's transition
//! probabilities. Every method must honor them identically.

use bepi_core::prelude::*;
use bepi_graph::Graph;
use bepi_sparse::Coo;
use bepi_tests::{assert_scores_close, reference_scores};

/// A weighted triangle plus a weakly attached node.
fn weighted_graph() -> Graph {
    let mut coo = Coo::new(4, 4).unwrap();
    coo.push(0, 1, 10.0).unwrap(); // strong edge
    coo.push(0, 2, 1.0).unwrap(); // weak edge
    coo.push(1, 0, 1.0).unwrap();
    coo.push(1, 2, 1.0).unwrap();
    coo.push(2, 0, 2.0).unwrap();
    coo.push(2, 3, 0.5).unwrap();
    coo.push(3, 2, 1.0).unwrap();
    Graph::from_adjacency(coo.to_csr()).unwrap()
}

#[test]
fn weights_shape_transition_probabilities() {
    let g = weighted_graph();
    let a = g.row_normalized();
    // Node 0 splits 10:1 between nodes 1 and 2.
    assert!((a.get(0, 1) - 10.0 / 11.0).abs() < 1e-15);
    assert!((a.get(0, 2) - 1.0 / 11.0).abs() < 1e-15);
}

#[test]
fn bepi_matches_power_on_weighted_graph() {
    let g = weighted_graph();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    for seed in 0..4 {
        let got = solver.query(seed).unwrap();
        let want = reference_scores(&g, 0.05, seed);
        assert_scores_close("weighted", &got.scores, &want, 1e-8);
    }
}

#[test]
fn heavier_edge_means_higher_score() {
    let g = weighted_graph();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let r = solver.query(0).unwrap();
    // From node 0, node 1 (weight 10) must outrank node 2 (weight 1).
    assert!(
        r.scores[1] > r.scores[2],
        "scores: {:?} — weight 10 edge must dominate",
        r.scores
    );
}

#[test]
fn exact_solver_agrees_on_weighted_graph() {
    let g = weighted_graph();
    let bepi = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let exact = DenseExact::with_defaults(&g).unwrap();
    for seed in 0..4 {
        let a = bepi.query(seed).unwrap();
        let b = exact.query(seed).unwrap();
        assert_scores_close("weighted-exact", &a.scores, &b.scores, 1e-8);
    }
}

#[test]
fn scaling_all_weights_is_invariant() {
    // Row normalization makes RWR invariant to uniform weight scaling.
    let g1 = weighted_graph();
    let mut adj = g1.adjacency().clone();
    adj.scale(7.5);
    let g2 = Graph::from_adjacency(adj).unwrap();
    let s1 = BePi::preprocess(&g1, &BePiConfig::default()).unwrap();
    let s2 = BePi::preprocess(&g2, &BePiConfig::default()).unwrap();
    for seed in 0..4 {
        let a = s1.query(seed).unwrap();
        let b = s2.query(seed).unwrap();
        assert_scores_close("weight-scaling", &a.scores, &b.scores, 1e-10);
    }
}
