//! Property-based tests for the sparse substrate: format round-trips,
//! kernel agreement with dense references, permutation algebra.

use bepi_sparse::{ops, spgemm, vecops, Coo, Csc, Csr, Dense, Permutation};
use proptest::prelude::*;

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn coo_strategy(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr as u32, 0..nc as u32, -10.0f64..10.0), 0..=max_nnz)
            .prop_map(move |trip| {
                let mut coo = Coo::new(nr, nc).unwrap();
                for (r, c, v) in trip {
                    coo.push(r as usize, c as usize, v).unwrap();
                }
                coo
            })
    })
}

fn square_csr_strategy(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, -5.0f64..5.0), 0..=max_nnz).prop_map(
            move |trip| {
                let mut coo = Coo::new(n, n).unwrap();
                for (r, c, v) in trip {
                    coo.push(r as usize, c as usize, v).unwrap();
                }
                coo.to_csr()
            },
        )
    })
}

/// Strategy: two same-shaped square CSR matrices.
fn pair_strategy(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr, Csr)> {
    (2..=max_dim).prop_flat_map(move |n| {
        let one = move || {
            proptest::collection::vec((0..n as u32, 0..n as u32, -5.0f64..5.0), 0..=max_nnz)
                .prop_map(move |trip| {
                    let mut coo = Coo::new(n, n).unwrap();
                    for (r, c, v) in trip {
                        coo.push(r as usize, c as usize, v).unwrap();
                    }
                    coo.to_csr()
                })
        };
        (one(), one())
    })
}

fn permutation_strategy(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut v: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates with proptest's rng for shrink-stability.
        for i in (1..n).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        Permutation::from_new_of_old(v).unwrap()
    })
}

proptest! {
    #[test]
    fn coo_csr_dense_roundtrip(coo in coo_strategy(12, 40)) {
        let csr = coo.to_csr();
        csr.check_invariants().unwrap();
        // Dense reference: sum duplicates.
        let mut dense = Dense::zeros(coo.nrows(), coo.ncols());
        for (r, c, v) in coo.iter() {
            dense[(r, c)] += v;
        }
        // CSR drops exact zeros; compare value-wise.
        prop_assert!(csr.to_dense().max_abs_diff(&dense).unwrap() < 1e-12);
    }

    #[test]
    fn csc_equals_csr(coo in coo_strategy(10, 30)) {
        let csr = coo.to_csr();
        let csc = Csc::from_coo(&coo);
        // Duplicate triplets may be summed in a different order on the two
        // paths, so compare with a tolerance rather than bit-exactly.
        let back = csc.to_csr();
        prop_assert_eq!(back.shape(), csr.shape());
        prop_assert!(back.to_dense().max_abs_diff(&csr.to_dense()).unwrap() < 1e-9);
    }

    #[test]
    fn transpose_is_involution(coo in coo_strategy(10, 30)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn spmv_matches_dense(coo in coo_strategy(10, 30), seed in 0u64..1000) {
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..csr.ncols())
            .map(|i| ((seed as f64) * 0.37 + i as f64 * 1.11).sin())
            .collect();
        let sparse_y = csr.mul_vec(&x).unwrap();
        let dense_y = csr.to_dense().mul_vec(&x).unwrap();
        for (a, b) in sparse_y.iter().zip(&dense_y) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transposed_spmv_matches_transpose(coo in coo_strategy(10, 30)) {
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..csr.nrows()).map(|i| (i as f64 * 0.7).cos()).collect();
        let via_kernel = csr.mul_vec_transposed(&x).unwrap();
        let via_materialized = csr.transpose().mul_vec(&x).unwrap();
        for (a, b) in via_kernel.iter().zip(&via_materialized) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn spgemm_matches_dense(pair in pair_strategy(8, 20)) {
        let (a, b) = pair;
        let c = spgemm(&a, &b).unwrap();
        let dense_ref = a.to_dense().mul(&b.to_dense()).unwrap();
        prop_assert!(c.to_dense().max_abs_diff(&dense_ref).unwrap() < 1e-10);
        c.check_invariants().unwrap();
    }

    #[test]
    fn add_sub_inverse(pair in pair_strategy(10, 30)) {
        let (a, b) = pair;
        let sum = ops::add(&a, &b).unwrap();
        let back = ops::sub(&sum, &b).unwrap();
        prop_assert!(back.to_dense().max_abs_diff(&a.to_dense()).unwrap() < 1e-12);
    }

    #[test]
    fn row_normalize_is_stochastic(coo in coo_strategy(10, 40)) {
        // Use absolute values so row sums can't cancel to zero.
        let mut abs = Coo::new(coo.nrows(), coo.ncols()).unwrap();
        for (r, c, v) in coo.iter() {
            abs.push(r, c, v.abs() + 0.1).unwrap();
        }
        let mut m = abs.to_csr();
        m.row_normalize();
        for r in 0..m.nrows() {
            let sum: f64 = m.row(r).1.iter().sum();
            prop_assert!(m.row_nnz(r) == 0 || (sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_roundtrips(p in (1usize..30).prop_flat_map(permutation_strategy)) {
        let n = p.len();
        let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let pv = p.permute_vec(&v).unwrap();
        prop_assert_eq!(p.unpermute_vec(&pv).unwrap(), v);
    }

    #[test]
    fn symmetric_permutation_conjugates_spmv(
        a in square_csr_strategy(12, 50),
    ) {
        let n = a.nrows();
        // Deterministic derangement-ish permutation: rotate by 1.
        let rot: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).collect();
        let p = Permutation::from_new_of_old(rot).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5).sin()).collect();
        let lhs = b.mul_vec(&p.permute_vec(&x).unwrap()).unwrap();
        let rhs = p.permute_vec(&a.mul_vec(&x).unwrap()).unwrap();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn slice_blocks_tile_the_matrix(a in square_csr_strategy(10, 40), split in 0usize..10) {
        let n = a.nrows();
        let s = split.min(n);
        let b11 = a.slice_block(0..s, 0..s).unwrap();
        let b12 = a.slice_block(0..s, s..n).unwrap();
        let b21 = a.slice_block(s..n, 0..s).unwrap();
        let b22 = a.slice_block(s..n, s..n).unwrap();
        prop_assert_eq!(b11.nnz() + b12.nnz() + b21.nnz() + b22.nnz(), a.nnz());
        // Spot-check entries map back.
        for (r, c, v) in b21.iter() {
            prop_assert_eq!(a.get(r + s, c), v);
        }
    }

    #[test]
    fn top_k_is_sorted_descending(scores in proptest::collection::vec(-1.0f64..1.0, 1..50), k in 1usize..10) {
        let idx = vecops::top_k_indices(&scores, k);
        for w in idx.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
        prop_assert_eq!(idx.len(), k.min(scores.len()));
    }

    // The parallel kernels partition rows and run the same serial body per
    // partition, so they must agree with the serial path bit-for-bit — not
    // merely within tolerance — at every thread count.
    #[test]
    fn parallel_spmv_is_bit_identical(coo in coo_strategy(40, 400), seed in 0u64..1000) {
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..csr.ncols())
            .map(|i| ((seed as f64) * 0.61 + i as f64 * 0.93).sin())
            .collect();
        let mut serial = vec![0.0f64; csr.nrows()];
        csr.mul_vec_into_threads(&x, &mut serial, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let mut par = vec![0.0f64; csr.nrows()];
            csr.mul_vec_into_threads(&x, &mut par, threads).unwrap();
            for (r, (a, b)) in serial.iter().zip(&par).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "spmv row {} differs at {} threads", r, threads
                );
            }
        }
    }

    #[test]
    fn parallel_spgemm_is_bit_identical(pair in pair_strategy(24, 160)) {
        let (a, b) = pair;
        let serial = spgemm::spgemm_threads(&a, &b, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let par = spgemm::spgemm_threads(&a, &b, threads).unwrap();
            par.check_invariants().unwrap();
            prop_assert_eq!(&par, &serial, "spgemm differs at {} threads", threads);
        }
    }
}

/// Directed skew cases the random strategies rarely hit: rows with no
/// entries at all, and one row holding almost every nonzero (the balanced
/// partitioner then assigns most threads a single row or an empty range).
#[test]
fn parallel_kernels_bit_identical_on_skewed_shapes() {
    let n = 64usize;

    // Shape 1: every row empty except the last.
    let mut tail = Coo::new(n, n).unwrap();
    for c in 0..n {
        tail.push(n - 1, c, (c as f64 * 0.17).sin() + 0.01).unwrap();
    }

    // Shape 2: one row dominates (n·4 entries), the rest hold one each,
    // with a band of fully empty rows in the middle.
    let mut skew = Coo::new(n, n).unwrap();
    for k in 0..4 * n {
        skew.push(7, k % n, (k as f64 * 0.31).cos()).unwrap();
    }
    for r in 0..n {
        if !(20..40).contains(&r) && r != 7 {
            skew.push(r, (r * 3) % n, 1.0 + r as f64 * 0.05).unwrap();
        }
    }

    for coo in [tail, skew] {
        let m = coo.to_csr();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.77).cos()).collect();
        let mut serial = vec![0.0f64; n];
        m.mul_vec_into_threads(&x, &mut serial, 1).unwrap();
        let gram_serial = spgemm::spgemm_threads(&m, &m, 1).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let mut par = vec![0.0f64; n];
            m.mul_vec_into_threads(&x, &mut par, threads).unwrap();
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "skewed spmv differs at {threads} threads"
            );
            let gram_par = spgemm::spgemm_threads(&m, &m, threads).unwrap();
            assert_eq!(
                gram_par, gram_serial,
                "skewed spgemm differs at {threads} threads"
            );
        }
    }
}
