//! Graph IO with arbitrary node labels.
//!
//! Real-world edge lists (SNAP, KONECT — the sources of the paper's
//! datasets, Appendix H) use arbitrary, non-contiguous, sometimes
//! non-numeric node identifiers. [`NodeIndexer`] maps labels to the
//! compact `0..n` ids the solvers need and back again for presenting
//! results.

use crate::graph::Graph;
use bepi_sparse::{Coo, Result, SparseError};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

/// A bijective mapping between external node labels and compact ids.
#[derive(Debug, Clone, Default)]
pub struct NodeIndexer {
    id_of_label: HashMap<String, u32>,
    label_of_id: Vec<String>,
}

impl NodeIndexer {
    /// Creates an empty indexer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for a label, assigning the next free id on first
    /// sight.
    pub fn intern(&mut self, label: &str) -> usize {
        if let Some(&id) = self.id_of_label.get(label) {
            return id as usize;
        }
        let id = self.label_of_id.len() as u32;
        self.id_of_label.insert(label.to_string(), id);
        self.label_of_id.push(label.to_string());
        id as usize
    }

    /// Looks up an existing label's id.
    pub fn id(&self, label: &str) -> Option<usize> {
        self.id_of_label.get(label).map(|&v| v as usize)
    }

    /// The label for an id.
    pub fn label(&self, id: usize) -> Option<&str> {
        self.label_of_id.get(id).map(String::as_str)
    }

    /// Number of distinct labels seen.
    pub fn len(&self) -> usize {
        self.label_of_id.len()
    }

    /// True when no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.label_of_id.is_empty()
    }

    /// Iterates over `(id, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.label_of_id
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.as_str()))
    }
}

/// Reads a labeled edge list (`src dst [weight]` per line, labels are
/// arbitrary whitespace-free strings, `#`/`%` comments) and returns the
/// graph plus the label mapping.
pub fn read_labeled_edge_list<R: Read>(reader: R) -> Result<(Graph, NodeIndexer)> {
    let mut indexer = NodeIndexer::new();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let s = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing src label".into()))?;
        let d = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("missing dst label on line {trimmed:?}")))?;
        let w: f64 = match it.next() {
            Some(f) => f
                .parse()
                .map_err(|_| SparseError::Parse(format!("invalid weight {f:?}")))?,
            None => 1.0,
        };
        let si = indexer.intern(s) as u32;
        let di = indexer.intern(d) as u32;
        edges.push((si, di, w));
    }
    let n = indexer.len();
    let mut coo = Coo::with_capacity(n, n, edges.len())?;
    for (s, d, w) in edges {
        coo.push(s as usize, d as usize, w)?;
    }
    Ok((Graph::from_adjacency(coo.to_csr())?, indexer))
}

/// Convenience: reads a labeled edge list from a file path.
pub fn read_labeled_edge_list_file<P: AsRef<std::path::Path>>(
    path: P,
) -> Result<(Graph, NodeIndexer)> {
    read_labeled_edge_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_bijective() {
        let mut ix = NodeIndexer::new();
        assert_eq!(ix.intern("alice"), 0);
        assert_eq!(ix.intern("bob"), 1);
        assert_eq!(ix.intern("alice"), 0);
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.label(1), Some("bob"));
        assert_eq!(ix.id("bob"), Some(1));
        assert_eq!(ix.id("carol"), None);
        assert_eq!(ix.label(5), None);
    }

    #[test]
    fn labeled_edge_list_with_string_ids() {
        let text = "# social graph\nalice bob\nbob carol 2.5\ncarol alice\n";
        let (g, ix) = read_labeled_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        let a = ix.id("alice").unwrap();
        let b = ix.id("bob").unwrap();
        let c = ix.id("carol").unwrap();
        assert_eq!(g.adjacency().get(a, b), 1.0);
        assert_eq!(g.adjacency().get(b, c), 2.5);
        assert_eq!(g.adjacency().get(c, a), 1.0);
    }

    #[test]
    fn non_contiguous_numeric_ids() {
        // Sparse numeric ids (the usual SNAP situation) compact to 0..n.
        let text = "1000000 42\n42 7\n";
        let (g, ix) = read_labeled_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(ix.id("1000000"), Some(0));
        assert_eq!(ix.id("42"), Some(1));
        assert_eq!(ix.id("7"), Some(2));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let (_, ix) = read_labeled_edge_list("x y\ny z\n".as_bytes()).unwrap();
        let pairs: Vec<(usize, &str)> = ix.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y"), (2, "z")]);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_labeled_edge_list("only_one_token\n".as_bytes()).is_err());
        assert!(read_labeled_edge_list("a b not_a_number\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input() {
        let (g, ix) = read_labeled_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
        assert!(ix.is_empty());
    }

    #[test]
    fn end_to_end_with_rwr() {
        // Labeled graph through the full pipeline: ranking by label.
        let text = "hub a\nhub b\na hub\nb hub\na b\n";
        let (g, ix) = read_labeled_edge_list(text.as_bytes()).unwrap();
        let a_norm = g.row_normalized();
        let mut q = vec![0.0; g.n()];
        q[ix.id("hub").unwrap()] = 1.0;
        // One power step suffices for a structural sanity check.
        let r = a_norm.mul_vec_transposed(&q).unwrap();
        assert!(r[ix.id("a").unwrap()] > 0.0);
        assert!(r[ix.id("b").unwrap()] > 0.0);
    }
}
