//! End-to-end observability tests: `?trace=1` stage breakdowns,
//! `GET /debug/slow`, and the solver-telemetry series on `/metrics`,
//! all driven over real TCP against a running daemon.
//!
//! The GMRES telemetry registry is process-global (that is the point:
//! CLI, batch, and serve paths share it), so every test in this file
//! takes [`guard`] — tests that assert counter deltas must not interleave
//! with tests that solve concurrently.

use bepi_core::prelude::*;
use bepi_server::{parse_metric, Server, ServerConfig, ServerHandle};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn solver() -> Arc<BePi> {
    static SOLVER: OnceLock<Arc<BePi>> = OnceLock::new();
    Arc::clone(SOLVER.get_or_init(|| {
        let g =
            bepi_graph::generators::rmat(7, 500, bepi_graph::generators::RmatParams::default(), 17)
                .unwrap();
        Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap())
    }))
}

/// Serializes the tests in this binary: the solver-telemetry registry is
/// shared process state, so counter-delta assertions need exclusivity.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A config that records every query in the slow log (threshold 0).
fn record_everything(entries: usize) -> ServerConfig {
    ServerConfig {
        slow_query: Duration::ZERO,
        slow_log_entries: entries,
        ..ServerConfig::default()
    }
}

fn start(config: &ServerConfig) -> ServerHandle {
    Server::start(solver(), config).expect("server must bind an ephemeral port")
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

/// Pulls an integer field like `"solve_us":123` out of a flat JSON chunk.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let start = body.find(&needle).unwrap_or_else(|| {
        panic!("field {field:?} missing from {body}");
    }) + needle.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().expect("numeric field")
}

/// Every `"seed":N` value in the body, in order of appearance.
fn seeds_in_order(body: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find("\"seed\":") {
        rest = &rest[pos + "\"seed\":".len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        out.push(digits.parse().expect("numeric seed"));
    }
    out
}

#[test]
fn trace_breakdown_stages_sum_to_at_most_total() {
    let _guard = guard();
    let handle = start(&record_everything(16));
    let addr = handle.local_addr();

    // Cache miss: the solve stage must dominate and every stage is
    // accounted for inside the total.
    let (status, body) = get(addr, "/query?seed=5&trace=1");
    assert_eq!(status, 200);
    assert!(body.contains("\"trace\":{"), "no trace block in {body}");
    let queue = json_u64(&body, "queue_us");
    let solve = json_u64(&body, "solve_us");
    let topk = json_u64(&body, "topk_us");
    let serialize = json_u64(&body, "serialize_us");
    let total = json_u64(&body, "total_us");
    assert!(solve > 0, "a real solve takes measurable time");
    assert!(
        queue + solve + topk + serialize <= total,
        "stages ({queue} + {solve} + {topk} + {serialize}) exceed total {total}"
    );
    // The unattributed remainder (parse + dispatch + cache probe) must be
    // small relative to the work: the named stages cover the latency.
    let stages = queue + solve + topk + serialize;
    assert!(
        (total - stages) < 50_000,
        "unattributed overhead {} us is implausibly large",
        total - stages
    );

    // Cache hit: same key (trace is not part of the cache key), so the
    // solve/top-k/serialize stages are all zero.
    let (status, body) = get(addr, "/query?seed=5&trace=1");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "solve_us"), 0);
    assert_eq!(json_u64(&body, "topk_us"), 0);
    assert_eq!(json_u64(&body, "serialize_us"), 0);
    assert!(json_u64(&body, "total_us") >= json_u64(&body, "queue_us"));

    // Without the flag the body carries no trace block.
    let (_, body) = get(addr, "/query?seed=5");
    assert!(!body.contains("\"trace\""));

    handle.shutdown();
}

#[test]
fn debug_slow_retains_newest_entries_in_order() {
    let _guard = guard();
    let handle = start(&record_everything(4));
    let addr = handle.local_addr();

    for seed in 0..8 {
        let (status, _) = get(addr, &format!("/query?seed={seed}"));
        assert_eq!(status, 200);
    }
    let (status, body) = get(addr, "/debug/slow");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"threshold_us\":0,\"capacity\":4,"));
    // Capacity 4, eight sequential queries: the ring holds the last four,
    // newest first.
    assert_eq!(seeds_in_order(&body), vec![7, 6, 5, 4]);
    // Misses carry their solver stats.
    assert!(json_u64(&body, "iterations") > 0);
    assert!(body.contains("\"cache_hit\":false"));

    // A repeat of seed 7 is a cache hit and is recorded as one.
    let (status, _) = get(addr, "/query?seed=7");
    assert_eq!(status, 200);
    let (_, body) = get(addr, "/debug/slow");
    assert_eq!(seeds_in_order(&body), vec![7, 7, 6, 5]);
    assert!(body.contains("\"cache_hit\":true"));

    handle.shutdown();
}

#[test]
fn high_threshold_slow_log_stays_empty() {
    let _guard = guard();
    let handle = start(&ServerConfig {
        slow_query: Duration::from_secs(3600),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    for seed in 0..4 {
        get(addr, &format!("/query?seed={seed}"));
    }
    let (_, body) = get(addr, "/debug/slow");
    assert!(body.ends_with("\"entries\":[]}"), "{body}");
    handle.shutdown();
}

#[test]
fn gmres_iteration_count_increases_only_on_cache_misses() {
    let _guard = guard();
    let handle = start(&record_everything(8));
    let addr = handle.local_addr();
    let count = |addr| {
        let (_, body) = get(addr, "/metrics");
        parse_metric(&body, "bepi_gmres_iterations_count").expect("gmres histogram on /metrics")
    };

    let before = count(addr);
    let (status, _) = get(addr, "/query?seed=11");
    assert_eq!(status, 200);
    let after_miss = count(addr);
    assert_eq!(after_miss, before + 1.0, "a miss solves exactly once");

    for _ in 0..5 {
        let (status, _) = get(addr, "/query?seed=11");
        assert_eq!(status, 200);
    }
    assert_eq!(count(addr), after_miss, "hits must not touch the solver");

    let (status, _) = get(addr, "/query?seed=12");
    assert_eq!(status, 200);
    assert_eq!(count(addr), after_miss + 1.0);

    handle.shutdown();
}

#[test]
fn concurrent_hammer_while_scraping_metrics_and_slow_log() {
    let _guard = guard();
    let handle = start(&record_everything(32));
    let addr = handle.local_addr();
    let n = solver().node_count();

    let clients: Vec<_> = (0..4)
        .map(|worker: usize| {
            std::thread::spawn(move || {
                for i in 0..50 {
                    let seed = (worker * 50 + i * 13) % n;
                    let target = if i % 2 == 0 {
                        format!("/query?seed={seed}&trace=1")
                    } else {
                        format!("/query?seed={seed}")
                    };
                    let (status, body) = get(addr, &target);
                    assert_eq!(status, 200, "{target}");
                    assert_eq!(body.contains("\"trace\":{"), i % 2 == 0, "{target}");
                }
            })
        })
        .collect();

    // Scrape both observability endpoints continuously while the clients
    // hammer /query: the exposition must stay well-formed and the slow
    // log must never serve a torn record (the seqlock skips those).
    let mut scrapes = 0;
    while clients.iter().any(|c| !c.is_finished()) || scrapes < 5 {
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        for line in metrics.lines().filter(|l| l.contains("le=\"")) {
            let le_start = line.find("le=\"").unwrap() + 4;
            let le = &line[le_start..le_start + line[le_start..].find('"').unwrap()];
            assert!(
                le == "+Inf" || (!le.contains(['e', 'E']) && le.parse::<f64>().is_ok()),
                "non-decimal le label under load: {line}"
            );
        }
        let (status, slow) = get(addr, "/debug/slow");
        assert_eq!(status, 200);
        assert!(slow.starts_with('{') && slow.ends_with("]}"), "{slow}");
        for seed in seeds_in_order(&slow) {
            assert!((seed as usize) < n, "torn slow-log record: seed {seed}");
        }
        scrapes += 1;
    }
    for c in clients {
        c.join().expect("client thread");
    }

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(
        parse_metric(&metrics, "bepi_queries_total").unwrap(),
        200.0,
        "every hammered request was answered"
    );
    assert!(parse_metric(&metrics, "bepi_gmres_iterations_count").unwrap() > 0.0);
    assert!(parse_metric(&metrics, "bepi_inflight_requests").is_some());
    assert!(parse_metric(&metrics, "bepi_queue_depth").is_some());
    handle.shutdown();
}
