//! The directed graph type all RWR methods consume.

use bepi_sparse::{Coo, Csr, MemBytes, Result, SparseError};

/// A directed graph stored as a CSR adjacency matrix.
///
/// Entry `A[u, v] = w` means an edge `u → v` of weight `w` (weight 1.0 for
/// the unweighted graphs of the paper; parallel edges sum their weights).
/// All RWR formulations in this workspace derive from the row-normalized
/// matrix `Ã` ([`Graph::row_normalized`]) per Equation (1) of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adj: Csr,
}

impl Graph {
    /// Builds a graph from a (square) adjacency matrix.
    pub fn from_adjacency(adj: Csr) -> Result<Self> {
        if adj.nrows() != adj.ncols() {
            return Err(SparseError::ShapeMismatch {
                left: adj.shape(),
                right: adj.shape(),
                op: "Graph::from_adjacency (matrix must be square)",
            });
        }
        Ok(Self { adj })
    }

    /// Builds an unweighted graph on `n` nodes from directed edges.
    /// Duplicate edges are merged (weights sum).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut coo = Coo::with_capacity(n, n, edges.len())?;
        for &(u, v) in edges {
            coo.push(u, v, 1.0)?;
        }
        Ok(Self { adj: coo.to_csr() })
    }

    /// Builds an unweighted graph treating each pair as an undirected edge
    /// (both directions inserted).
    pub fn from_undirected_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut coo = Coo::with_capacity(n, n, edges.len() * 2)?;
        for &(u, v) in edges {
            coo.push(u, v, 1.0)?;
            if u != v {
                coo.push(v, u, 1.0)?;
            }
        }
        Ok(Self { adj: coo.to_csr() })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of stored (merged) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.nnz()
    }

    /// The adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &Csr {
        &self.adj
    }

    /// Consumes the graph and returns the adjacency matrix.
    pub fn into_adjacency(self) -> Csr {
        self.adj
    }

    /// Out-neighbors of `u` (column indices of row `u`).
    pub fn out_neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj.row_iter(u).map(|(v, _)| v)
    }

    /// Out-degree of `u` (number of stored out-edges).
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj.row_nnz(u)
    }

    /// All out-degrees.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.n()).map(|u| self.out_degree(u)).collect()
    }

    /// All in-degrees.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n()];
        for &c in self.adj.indices() {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Total degree (in + out) per node — the hub score SlashBurn ranks by.
    pub fn total_degrees(&self) -> Vec<usize> {
        let mut deg = self.in_degrees();
        for (u, d) in deg.iter_mut().enumerate() {
            *d += self.out_degree(u);
        }
        deg
    }

    /// Nodes with no out-edges ("deadends", Section 3.2.1 of the paper).
    pub fn deadends(&self) -> Vec<usize> {
        (0..self.n()).filter(|&u| self.out_degree(u) == 0).collect()
    }

    /// Number of deadend nodes.
    pub fn deadend_count(&self) -> usize {
        (0..self.n()).filter(|&u| self.out_degree(u) == 0).count()
    }

    /// The row-normalized adjacency matrix `Ã` of Equation (1).
    /// Deadend rows stay all-zero.
    pub fn row_normalized(&self) -> Csr {
        let mut a = self.adj.clone();
        a.row_normalize();
        a
    }

    /// Symmetrized adjacency structure `A ∨ A^T` (values = 1.0), used by
    /// SlashBurn's connectivity computations which treat the graph as
    /// undirected.
    pub fn undirected_structure(&self) -> Csr {
        let t = self.adj.transpose();
        let mut sym =
            bepi_sparse::ops::add(&binarize(&self.adj), &binarize(&t)).expect("same shape");
        for v in sym.values_mut() {
            *v = 1.0;
        }
        sym
    }

    /// The transpose graph (every edge reversed). Solving RWR on the
    /// transpose answers *reverse* queries — "which seeds score node `t`
    /// highly?" (the reverse top-k problem of Yu et al., cited in the
    /// paper's related work).
    pub fn transpose(&self) -> Graph {
        Graph {
            adj: self.adj.transpose(),
        }
    }

    /// The induced subgraph on nodes `0..k` of the current labeling — the
    /// "principal submatrix" extraction the paper uses for the scalability
    /// experiment (Section 4.4, Figure 5).
    pub fn principal_subgraph(&self, k: usize) -> Result<Graph> {
        let sub = self.adj.slice_block(0..k, 0..k)?;
        Graph::from_adjacency(sub)
    }
}

fn binarize(a: &Csr) -> Csr {
    let mut b = a.clone();
    for v in b.values_mut() {
        *v = 1.0;
    }
    b
}

impl MemBytes for Graph {
    fn mem_bytes(&self) -> usize {
        self.adj.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_deadend() -> Graph {
        // 0→1, 1→2, 2→0, 3 is a deadend (only incoming).
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_deadend();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn degrees() {
        let g = triangle_plus_deadend();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 1]);
        assert_eq!(g.total_degrees(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn deadends_found() {
        let g = triangle_plus_deadend();
        assert_eq!(g.deadends(), vec![3]);
        assert_eq!(g.deadend_count(), 1);
    }

    #[test]
    fn row_normalized_is_stochastic_except_deadends() {
        let g = triangle_plus_deadend();
        let a = g.row_normalized();
        assert_eq!(a.get(0, 1), 0.5);
        assert_eq!(a.get(0, 3), 0.5);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.row_nnz(3), 0);
    }

    #[test]
    fn undirected_structure_symmetric() {
        let g = triangle_plus_deadend();
        let u = g.undirected_structure();
        for (r, c, v) in u.iter() {
            assert_eq!(v, 1.0);
            assert_eq!(u.get(c, r), 1.0);
        }
    }

    #[test]
    fn duplicate_edges_merge() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.adjacency().get(0, 1), 2.0);
    }

    #[test]
    fn undirected_constructor_inserts_both() {
        let g = Graph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.adjacency().get(1, 0), 1.0);
        assert_eq!(g.adjacency().get(2, 1), 1.0);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn self_loop_in_undirected_not_doubled() {
        let g = Graph::from_undirected_edges(2, &[(0, 0)]).unwrap();
        assert_eq!(g.adjacency().get(0, 0), 1.0);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = triangle_plus_deadend();
        let t = g.transpose();
        assert_eq!(t.adjacency().get(1, 0), 1.0); // was 0->1
        assert_eq!(t.adjacency().get(3, 0), 1.0); // was 0->3
        assert_eq!(t.m(), g.m());
        assert_eq!(t.transpose(), g);
        // Node 3 had only in-edges; in the transpose it has only out-edges.
        assert_eq!(t.out_degree(3), 1);
    }

    #[test]
    fn principal_subgraph_keeps_prefix() {
        let g = triangle_plus_deadend();
        let s = g.principal_subgraph(3).unwrap();
        assert_eq!(s.n(), 3);
        assert_eq!(s.m(), 3); // 0→3 edge dropped
    }

    #[test]
    fn from_adjacency_rejects_rectangular() {
        let a = Csr::zeros(2, 3);
        assert!(Graph::from_adjacency(a).is_err());
    }
}
