//! Regenerates the paper artifact; see `bepi_bench::experiments::fig3`.

fn main() {
    print!("{}", bepi_bench::experiments::fig3::run());
}
