//! Dense LU factorization, solves, and inversion.
//!
//! Three consumers in the reproduction:
//! * the exact reference `r* = c H^{-1} q` on the small Physicians-like
//!   graph (Appendix I / Figure 10);
//! * the Bear baseline, which inverts the Schur complement `S` densely —
//!   the `O(n2³)` time / `O(n2²)` space cost that BePI eliminates;
//! * the small diagonal blocks of `H11` in [`crate::block_lu`], factored
//!   without pivoting (safe by diagonal dominance) so the factors stay
//!   triangular in the original row order.

use bepi_sparse::{Dense, Result, SparseError};

/// A dense LU factorization with partial (row) pivoting: `P A = L U`.
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed factors: strictly-lower part holds `L` (unit diagonal
    /// implicit), upper part holds `U`.
    lu: Dense,
    /// Row permutation: `pivots[i]` = original row now in position `i`.
    pivots: Vec<usize>,
}

impl DenseLu {
    /// Factors a square matrix. Fails on structural singularity.
    pub fn factor(a: &Dense) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: a.shape(),
                op: "DenseLu::factor (matrix must be square)",
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at/below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(SparseError::Numerical(format!(
                    "singular matrix: zero pivot column {k}"
                )));
            }
            if p != k {
                pivots.swap(k, p);
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in k + 1..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Self { lu, pivots })
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n();
        if b.len() != n {
            return Err(SparseError::VectorLength {
                expected: n,
                actual: b.len(),
            });
        }
        // Apply the row permutation, then L (unit) forward, then U backward.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes the explicit inverse (solves against each unit vector).
    pub fn inverse(&self) -> Result<Dense> {
        let n = self.n();
        let mut inv = Dense::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant (product of pivots, adjusted for row-swap parity).
    pub fn determinant(&self) -> f64 {
        let n = self.n();
        let mut det: f64 = (0..n).map(|i| self.lu[(i, i)]).product();
        // Count permutation parity.
        let mut perm = self.pivots.clone();
        let mut swaps = 0usize;
        for i in 0..n {
            while perm[i] != i {
                let t = perm[i];
                perm.swap(i, t);
                swaps += 1;
            }
        }
        if swaps % 2 == 1 {
            det = -det;
        }
        det
    }
}

/// LU factorization *without pivoting*: `A = L U` with unit-diagonal `L`.
///
/// Valid for strictly diagonally dominant matrices such as `H` and its
/// principal sub-blocks; keeping the original row order means `L`/`U` are
/// genuinely triangular in the matrix's own indexing, which
/// [`crate::block_lu`] needs when assembling the global block-diagonal
/// `L1^{-1}` / `U1^{-1}`.
pub fn lu_nopivot(a: &Dense) -> Result<(Dense, Dense)> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "lu_nopivot (matrix must be square)",
        });
    }
    let n = a.nrows();
    let mut u = a.clone();
    let mut l = Dense::identity(n);
    for k in 0..n {
        let pivot = u[(k, k)];
        if pivot == 0.0 {
            return Err(SparseError::ZeroDiagonal { row: k });
        }
        for i in k + 1..n {
            let m = u[(i, k)] / pivot;
            if m != 0.0 {
                l[(i, k)] = m;
                for j in k..n {
                    let ukj = u[(k, j)];
                    u[(i, j)] -= m * ukj;
                }
            }
        }
    }
    // Zero the strictly-lower part of U exactly.
    for i in 0..n {
        for j in 0..i {
            u[(i, j)] = 0.0;
        }
    }
    Ok((l, u))
}

/// Inverts a unit-lower-triangular dense matrix in `O(n³/3)`.
pub fn invert_unit_lower(l: &Dense) -> Dense {
    let n = l.nrows();
    let mut inv = Dense::identity(n);
    // Column-oriented forward substitution against each unit vector.
    for j in 0..n {
        for i in j + 1..n {
            let mut acc = 0.0;
            for k in j..i {
                acc -= l[(i, k)] * inv[(k, j)];
            }
            inv[(i, j)] = acc;
        }
    }
    inv
}

/// Inverts an upper-triangular dense matrix (non-zero diagonal required).
pub fn invert_upper(u: &Dense) -> Result<Dense> {
    let n = u.nrows();
    let mut inv = Dense::zeros(n, n);
    for j in (0..n).rev() {
        let d = u[(j, j)];
        if d == 0.0 {
            return Err(SparseError::ZeroDiagonal { row: j });
        }
        inv[(j, j)] = 1.0 / d;
        for i in (0..j).rev() {
            let mut acc = 0.0;
            for k in i + 1..=j {
                acc -= u[(i, k)] * inv[(k, j)];
            }
            inv[(i, j)] = acc / u[(i, i)];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense {
        Dense::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, -1.0], &[0.0, -1.0, 5.0]]).unwrap()
    }

    #[test]
    fn solve_recovers_solution() {
        let a = sample();
        let x_true = vec![1.0, -2.0, 0.25];
        let b = a.mul_vec(&x_true).unwrap();
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_needs_pivoting_case() {
        // Zero in the (0,0) position forces a row swap.
        let a = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = sample();
        let inv = DenseLu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Dense::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn singular_rejected() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(DenseLu::factor(&a).is_err());
    }

    #[test]
    fn determinant_known() {
        let a = Dense::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((DenseLu::factor(&a).unwrap().determinant() - 6.0).abs() < 1e-14);
        let b = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((DenseLu::factor(&b).unwrap().determinant() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn nopivot_factors_multiply_back() {
        let a = sample(); // diagonally dominant
        let (l, u) = lu_nopivot(&a).unwrap();
        let prod = l.mul(&u).unwrap();
        assert!(prod.max_abs_diff(&a).unwrap() < 1e-12);
        // L unit lower, U upper.
        for i in 0..3 {
            assert_eq!(l[(i, i)], 1.0);
            for j in i + 1..3 {
                assert_eq!(l[(i, j)], 0.0);
                assert_eq!(u[(j, i)], 0.0);
            }
        }
    }

    #[test]
    fn nopivot_rejects_zero_pivot() {
        let a = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(lu_nopivot(&a).is_err());
    }

    #[test]
    fn triangular_inverses() {
        let a = sample();
        let (l, u) = lu_nopivot(&a).unwrap();
        let li = invert_unit_lower(&l);
        let ui = invert_upper(&u).unwrap();
        assert!(
            l.mul(&li)
                .unwrap()
                .max_abs_diff(&Dense::identity(3))
                .unwrap()
                < 1e-12
        );
        assert!(
            u.mul(&ui)
                .unwrap()
                .max_abs_diff(&Dense::identity(3))
                .unwrap()
                < 1e-12
        );
        // A^{-1} = U^{-1} L^{-1}
        let inv = ui.mul(&li).unwrap();
        assert!(
            a.mul(&inv)
                .unwrap()
                .max_abs_diff(&Dense::identity(3))
                .unwrap()
                < 1e-12
        );
    }

    #[test]
    fn invert_upper_zero_diag_rejected() {
        let u = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 0.0]]).unwrap();
        assert!(invert_upper(&u).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Dense::from_rows(&[&[2.5]]).unwrap();
        let lu = DenseLu::factor(&a).unwrap();
        assert_eq!(lu.solve(&[5.0]).unwrap(), vec![2.0]);
        assert!((lu.determinant() - 2.5).abs() < 1e-15);
    }
}
