//! Alternative preconditioners.
//!
//! Section 3.5 of the paper: "Among various preconditioning techniques
//! such as incomplete LU decomposition (ILU) or Sparse Approximate
//! Inverse (SPAI), we choose ILU as a preconditioner because ILU factors
//! are easily computed and effective." This module implements the
//! alternatives so the ablation benches can quantify that choice:
//!
//! * [`JacobiPrecond`] — `M = diag(A)`, the cheapest possible choice.
//! * [`NeumannPrecond`] — the truncated Neumann-series polynomial
//!   preconditioner `M^{-1} = Σ_{i<t} (I − D^{-1}A)^i D^{-1}`, a simple
//!   stand-in for SPAI-style explicit approximate inverses (it applies
//!   only SpMVs, no triangular solves).

use crate::linop::Preconditioner;
use bepi_sparse::{Csr, MemBytes, Result, SparseError};

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Extracts and inverts the diagonal.
    ///
    /// # Errors
    /// [`SparseError::ZeroDiagonal`] if any diagonal entry is zero.
    pub fn new(a: &Csr) -> Result<Self> {
        let diag = a.diagonal();
        if let Some(i) = diag.iter().position(|&d| d == 0.0) {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        Ok(Self {
            inv_diag: diag.into_iter().map(|d| 1.0 / d).collect(),
        })
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.inv_diag.len());
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

impl MemBytes for JacobiPrecond {
    fn mem_bytes(&self) -> usize {
        self.inv_diag.mem_bytes()
    }
}

/// Truncated Neumann-series polynomial preconditioner:
/// `M^{-1} r = Σ_{i=0}^{order-1} (I − D^{-1}A)^i D^{-1} r`.
///
/// Converges as a preconditioner whenever Jacobi iteration converges
/// (e.g. the diagonally dominant `S` BePI builds); each application costs
/// `order − 1` SpMVs. Unlike ILU it is a purely explicit operator — the
/// property SPAI methods trade accuracy for.
#[derive(Debug, Clone)]
pub struct NeumannPrecond {
    a: Csr,
    inv_diag: Vec<f64>,
    order: usize,
}

impl NeumannPrecond {
    /// Builds the preconditioner with the given truncation order (≥ 1;
    /// order 1 degenerates to [`JacobiPrecond`]).
    pub fn new(a: &Csr, order: usize) -> Result<Self> {
        if order == 0 {
            return Err(SparseError::Numerical(
                "Neumann order must be at least 1".into(),
            ));
        }
        let diag = a.diagonal();
        if let Some(i) = diag.iter().position(|&d| d == 0.0) {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        Ok(Self {
            a: a.clone(),
            inv_diag: diag.into_iter().map(|d| 1.0 / d).collect(),
            order,
        })
    }

    /// The truncation order.
    pub fn order(&self) -> usize {
        self.order
    }
}

impl Preconditioner for NeumannPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        debug_assert_eq!(n, self.inv_diag.len());
        // term = D^{-1} r; z = term.
        let mut term: Vec<f64> = r
            .iter()
            .zip(&self.inv_diag)
            .map(|(ri, di)| ri * di)
            .collect();
        z.copy_from_slice(&term);
        let mut at = vec![0.0; n];
        for _ in 1..self.order {
            // term ← (I − D^{-1}A) term = term − D^{-1}(A term)
            self.a
                .mul_vec_into(&term, &mut at)
                .expect("square operator");
            for ((t, av), di) in term.iter_mut().zip(&at).zip(&self.inv_diag) {
                *t -= av * di;
            }
            for (zi, t) in z.iter_mut().zip(&term) {
                *zi += t;
            }
        }
    }
}

impl MemBytes for NeumannPrecond {
    fn mem_bytes(&self) -> usize {
        self.a.mem_bytes() + self.inv_diag.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gmres, GmresConfig};
    use bepi_sparse::Coo;

    fn dd_matrix(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 3, 8] {
                let j = (i + d) % n;
                if j != i {
                    let v = 0.25 + ((i + j) % 4) as f64 * 0.1;
                    coo.push(i, j, -v).unwrap();
                    off += v;
                }
            }
            coo.push(i, i, off + 0.3).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn jacobi_is_exact_on_diagonal_matrix() {
        let mut coo = Coo::new(3, 3).unwrap();
        for (i, d) in [2.0, 4.0, 0.5].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let m = JacobiPrecond::new(&coo.to_csr()).unwrap();
        let mut z = vec![0.0; 3];
        m.apply(&[2.0, 4.0, 0.5], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(JacobiPrecond::new(&coo.to_csr()).is_err());
    }

    #[test]
    fn neumann_order1_equals_jacobi() {
        let a = dd_matrix(20);
        let j = JacobiPrecond::new(&a).unwrap();
        let nm = NeumannPrecond::new(&a, 1).unwrap();
        let r: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        let mut z1 = vec![0.0; 20];
        let mut z2 = vec![0.0; 20];
        j.apply(&r, &mut z1);
        nm.apply(&r, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn higher_order_neumann_is_better_approximation() {
        // ‖A M^{-1} r − r‖ should shrink as the order grows.
        let a = dd_matrix(30);
        let r: Vec<f64> = (0..30).map(|i| ((i * 3) as f64 * 0.2).sin()).collect();
        let mut prev_res = f64::INFINITY;
        for order in [1usize, 2, 4, 8] {
            let m = NeumannPrecond::new(&a, order).unwrap();
            let mut z = vec![0.0; 30];
            m.apply(&r, &mut z);
            let az = a.mul_vec(&z).unwrap();
            let res: f64 = az
                .iter()
                .zip(&r)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(
                res < prev_res,
                "order {order}: residual {res} did not improve on {prev_res}"
            );
            prev_res = res;
        }
    }

    #[test]
    fn both_preconditioners_accelerate_gmres() {
        let a = dd_matrix(120);
        // Non-constant rhs (see bicgstab tests for why ones is degenerate).
        let b: Vec<f64> = (0..120).map(|i| (i as f64 * 0.47).cos() + 0.2).collect();
        let plain = gmres(&a, &b, None, None, &GmresConfig::default()).unwrap();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let with_jacobi = gmres(
            &a,
            &b,
            None,
            Some(&jacobi as &dyn Preconditioner),
            &GmresConfig::default(),
        )
        .unwrap();
        let neumann = NeumannPrecond::new(&a, 4).unwrap();
        let with_neumann = gmres(
            &a,
            &b,
            None,
            Some(&neumann as &dyn Preconditioner),
            &GmresConfig::default(),
        )
        .unwrap();
        assert!(with_jacobi.converged && with_neumann.converged && plain.converged);
        assert!(with_jacobi.iterations <= plain.iterations);
        assert!(with_neumann.iterations <= with_jacobi.iterations);
        // All agree on the solution.
        for (x, y) in with_neumann.x.iter().zip(&plain.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn neumann_rejects_order_zero() {
        let a = dd_matrix(5);
        assert!(NeumannPrecond::new(&a, 0).is_err());
    }
}
