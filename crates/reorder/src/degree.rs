//! Degree-based node ordering.
//!
//! The LU-decomposition baseline (Fujiwara et al., VLDB 2012; Section 2.3
//! of the BePI paper) reorders `H` "based on nodes' degrees and community
//! structures to make the inverses of factors sparse". Eliminating
//! low-degree nodes first is the classic minimum-degree-style heuristic
//! that keeps LU fill-in down.

use bepi_graph::Graph;
use bepi_sparse::Permutation;

/// Direction of the degree sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeOrder {
    /// Lowest total degree first (standard fill-reducing choice).
    Ascending,
    /// Highest total degree first.
    Descending,
}

/// Orders nodes by total degree (ties by node id).
pub fn degree_order(g: &Graph, order: DegreeOrder) -> Permutation {
    let degs = g.total_degrees();
    let mut nodes: Vec<u32> = (0..g.n() as u32).collect();
    match order {
        DegreeOrder::Ascending => {
            nodes
                .sort_unstable_by(|&a, &b| degs[a as usize].cmp(&degs[b as usize]).then(a.cmp(&b)));
        }
        DegreeOrder::Descending => {
            nodes
                .sort_unstable_by(|&a, &b| degs[b as usize].cmp(&degs[a as usize]).then(a.cmp(&b)));
        }
    }
    // nodes[new] = old
    Permutation::from_old_of_new(nodes).expect("sorted node list is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn ascending_puts_low_degree_first() {
        let g = generators::star(5); // node 0 has degree 8, leaves 2
        let p = degree_order(&g, DegreeOrder::Ascending);
        assert_eq!(p.apply(0), 4); // hub last
                                   // Leaves keep id order.
        assert_eq!(p.apply(1), 0);
        assert_eq!(p.apply(2), 1);
    }

    #[test]
    fn descending_puts_hub_first() {
        let g = generators::star(5);
        let p = degree_order(&g, DegreeOrder::Descending);
        assert_eq!(p.apply(0), 0);
    }

    #[test]
    fn is_valid_permutation_on_random_graph() {
        let g = generators::erdos_renyi(100, 400, 3).unwrap();
        let p = degree_order(&g, DegreeOrder::Ascending);
        let mut seen = [false; 100];
        for u in 0..100 {
            let l = p.apply(u);
            assert!(!seen[l]);
            seen[l] = true;
        }
    }

    #[test]
    fn degrees_monotone_along_labels() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 2).unwrap();
        let degs = g.total_degrees();
        let p = degree_order(&g, DegreeOrder::Ascending);
        let by_label: Vec<usize> = (0..g.n()).map(|l| degs[p.apply_inverse(l)]).collect();
        for w in by_label.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
