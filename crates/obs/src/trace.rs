//! Distributed-tracing primitives: request ids, the trace clock, and
//! the Chrome trace-event exporter.
//!
//! The correlation story is one identifier threaded through every
//! process a request touches:
//!
//! - [`RequestId`] is a 128-bit id minted at the ingress tier (the
//!   router, or a standalone daemon) and propagated as the
//!   `X-Request-Id` header on every hop — including retries and hedge
//!   requests against sibling shards. It is echoed on responses and
//!   stamped into both slowlogs and structured log lines, so one grep
//!   for the hex id reconstructs the request's path across the fleet.
//! - [`clock_us`] is a process-wide monotonic microsecond clock
//!   anchored at its first call; exported trace events timestamp
//!   against it so events from one process share a consistent axis.
//! - [`TraceExporter`] appends Chrome trace-event JSON (the
//!   `chrome://tracing` / Perfetto "JSON array" format) to a file, one
//!   flushed event at a time, so the file is inspectable while the
//!   process is still running and survives an abrupt kill.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A 128-bit request identifier, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestId {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl RequestId {
    /// Mints a fresh id.
    ///
    /// Std-only entropy: wall-clock nanos, the pid, a per-process
    /// counter, and the std hasher's per-process random keys, each
    /// diffused through a SplitMix64 finalizer. Not cryptographic —
    /// collision-resistant enough for correlation, which is all the id
    /// is for.
    pub fn mint() -> RequestId {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        static SALT: OnceLock<u64> = OnceLock::new();
        let salt = *SALT.get_or_init(|| {
            let mut h = RandomState::new().build_hasher();
            h.write_u32(std::process::id());
            h.finish()
        });
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        RequestId {
            hi: splitmix(nanos ^ salt),
            lo: splitmix(n.wrapping_add(salt.rotate_left(32)) ^ nanos.rotate_left(17)),
        }
    }

    /// The 32-digit lowercase hex form used in headers and log lines.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-hex-digit wire form; `None` for anything else.
    /// A peer sending a malformed id gets a freshly minted one instead
    /// of an echo, so responses never reflect arbitrary header bytes.
    pub fn parse(s: &str) -> Option<RequestId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(RequestId {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }

    /// True for the all-zero id, used as "absent" in packed ring records.
    pub fn is_zero(self) -> bool {
        self.hi == 0 && self.lo == 0
    }
}

/// SplitMix64 finalizer: full-avalanche diffusion of one word.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Microseconds since the process's trace epoch (anchored at first call).
pub fn clock_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One complete-duration (`"ph":"X"`) Chrome trace event.
#[derive(Debug)]
pub struct TraceEvent<'a> {
    /// Event name (shown on the track).
    pub name: &'a str,
    /// Category string.
    pub cat: &'a str,
    /// Start timestamp in microseconds ([`clock_us`] domain).
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Process lane: shard id for daemons, `ROUTER_PID` for the router.
    pub pid: u64,
    /// Thread lane: worker ordinal (daemon) or attempt index (router).
    pub tid: u64,
    /// Extra `args` key/value pairs (values rendered as JSON strings).
    pub args: &'a [(&'a str, &'a str)],
}

/// The `pid` lane the router exports under, chosen to sort before the
/// shard ids without colliding with them (shards are 0-based).
pub const ROUTER_PID: u64 = 9999;

/// Appends Chrome trace-event JSON to a file, one event per call.
///
/// The file opens with `[` and each event is flushed as soon as it is
/// written, so drills (and operators) can grep the file while the
/// process is live. [`TraceExporter::close`] terminates the JSON array;
/// a file from a killed process lacks the closing `]`, which the
/// Perfetto JSON importer tolerates.
#[derive(Debug)]
pub struct TraceExporter {
    out: Mutex<ExportState>,
}

#[derive(Debug)]
struct ExportState {
    writer: std::io::BufWriter<std::fs::File>,
    events: u64,
    closed: bool,
}

impl TraceExporter {
    /// Creates (truncating) the export file and writes the opening
    /// bracket plus one `process_name` metadata event per `(pid, name)`
    /// pair, mapping trace lanes to fleet processes.
    pub fn create(path: &Path, process_names: &[(u64, &str)]) -> std::io::Result<TraceExporter> {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        writer.write_all(b"[")?;
        let exporter = TraceExporter {
            out: Mutex::new(ExportState {
                writer,
                events: 0,
                closed: false,
            }),
        };
        for (pid, name) in process_names {
            exporter.write_raw(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                pid,
                json_escape(name)
            ))?;
        }
        Ok(exporter)
    }

    /// Appends one complete event and flushes. Errors are swallowed —
    /// export is diagnostics, never worth failing a request over.
    pub fn emit(&self, ev: &TraceEvent<'_>) {
        let mut args = String::new();
        for (k, v) in ev.args {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("{}:{}", json_escape(k), json_escape(v)));
        }
        let line = format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            json_escape(ev.name),
            json_escape(ev.cat),
            ev.ts_us,
            ev.dur_us,
            ev.pid,
            ev.tid,
            args
        );
        let _ = self.write_raw(&line);
    }

    /// Terminates the JSON array. Idempotent; also called on drop.
    pub fn close(&self) {
        let mut state = self.lock();
        if state.closed {
            return;
        }
        state.closed = true;
        let _ = state.writer.write_all(b"\n]\n");
        let _ = state.writer.flush();
    }

    fn write_raw(&self, event_json: &str) -> std::io::Result<()> {
        let mut state = self.lock();
        if state.closed {
            return Ok(());
        }
        let sep = if state.events == 0 { "\n" } else { ",\n" };
        state.events += 1;
        state.writer.write_all(sep.as_bytes())?;
        state.writer.write_all(event_json.as_bytes())?;
        state.writer.flush()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExportState> {
        self.out.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for TraceExporter {
    fn drop(&mut self) {
        self.close();
    }
}

/// Escapes a string into a JSON string literal (minimal, export-local).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_distinct_and_round_trip() {
        let a = RequestId::mint();
        let b = RequestId::mint();
        assert_ne!(a, b, "two mints must differ");
        assert!(!a.is_zero());
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.bytes().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(RequestId::parse(&hex), Some(a));
    }

    #[test]
    fn parse_rejects_non_wire_forms() {
        assert_eq!(RequestId::parse(""), None);
        assert_eq!(RequestId::parse("abc"), None);
        assert_eq!(RequestId::parse(&"g".repeat(32)), None);
        assert_eq!(RequestId::parse(&"0".repeat(33)), None);
        let zero = RequestId::parse(&"0".repeat(32)).unwrap();
        assert!(zero.is_zero());
    }

    #[test]
    fn concurrent_mints_stay_distinct() {
        use std::collections::HashSet;
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..200).map(|_| RequestId::mint()).collect::<Vec<_>>()))
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert((id.hi, id.lo)), "duplicate id {}", id.to_hex());
            }
        }
    }

    #[test]
    fn clock_is_monotone() {
        let a = clock_us();
        let b = clock_us();
        assert!(b >= a);
    }

    #[test]
    fn exporter_writes_parseable_event_stream() {
        let dir = std::env::temp_dir().join(format!("bepi_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let exporter = TraceExporter::create(&path, &[(0, "bepi-shard-0")]).unwrap();
        exporter.emit(&TraceEvent {
            name: "query seed=5",
            cat: "serve",
            ts_us: 10,
            dur_us: 250,
            pid: 0,
            tid: 3,
            args: &[("request_id", "00ff"), ("cache", "miss")],
        });
        // The file is valid-prefix while open: events flushed eagerly.
        let live = std::fs::read_to_string(&path).unwrap();
        assert!(live.contains("\"request_id\":\"00ff\""), "{live}");
        exporter.close();
        exporter.close(); // idempotent
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":250"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
