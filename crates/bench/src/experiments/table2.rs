//! Table 2 — dataset summary: `n`, `m`, `k`, and the partition sizes
//! `n1`, `n2` under BePI-B's (k = 0.001) and BePI-S/BePI's hub ratios,
//! plus the deadend count `n3`.

use crate::harness::suite;
use crate::table::Table;
use bepi_core::hmatrix::HPartition;
use bepi_core::DEFAULT_RESTART_PROB;
use std::fmt::Write as _;

/// Runs the reordering pipeline at both hub ratios and tabulates the
/// partition sizes.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — synthetic dataset suite (stand-ins for the paper's graphs)\n"
    );
    let mut t = Table::new(vec![
        "dataset", "n", "m", "k", "n1 (B)", "n1 (S)", "n2 (B)", "n2 (S)", "n3",
    ]);
    for ds in suite() {
        let spec = ds.spec();
        let g = ds.generate();
        eprintln!("[table2] {}", spec.name);
        let basic = HPartition::build(&g, DEFAULT_RESTART_PROB, 0.001).expect("partition");
        let sparse =
            HPartition::build(&g, DEFAULT_RESTART_PROB, spec.hub_ratio).expect("partition");
        assert_eq!(basic.n3, sparse.n3);
        t.row(vec![
            spec.name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.3}", spec.hub_ratio),
            basic.n1.to_string(),
            sparse.n1.to_string(),
            basic.n2.to_string(),
            sparse.n2.to_string(),
            basic.n3.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "(B) = BePI-B partition with k = 0.001; (S) = BePI-S/BePI partition with the k column."
    );
    out
}
