//! Dense eigenvalue computation: Householder Hessenberg reduction and the
//! Francis double-shift QR iteration.
//!
//! Figure 7 of the paper plots the top eigenvalues of the Schur complement
//! `S` and of the preconditioned operator `(L̂2Û2)^{-1} S` to show why the
//! ILU preconditioner makes GMRES converge faster (tight eigenvalue
//! clustering). The Ritz values come from an Arnoldi Hessenberg matrix
//! ([`crate::arnoldi`]); this module computes that small dense matrix's
//! eigenvalues from scratch.

use bepi_sparse::Dense;

/// A complex number represented as `(re, im)`.
pub type Complex = (f64, f64);

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transformations (eigenvalues preserved).
pub fn to_hessenberg(a: &Dense) -> Dense {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "to_hessenberg needs a square matrix");
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector annihilating h[k+2.., k].
        let mut alpha = 0.0;
        for i in k + 1..n {
            alpha += h[(i, k)] * h[(i, k)];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if h[(k + 1, k)] > 0.0 {
            alpha = -alpha;
        }
        let mut v = vec![0.0; n];
        v[k + 1] = h[(k + 1, k)] - alpha;
        for i in k + 2..n {
            v[i] = h[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        // H ← (I − 2vvᵀ/‖v‖²) H (I − 2vvᵀ/‖v‖²)
        // Left multiply.
        for j in 0..n {
            let mut dot = 0.0;
            for i in k + 1..n {
                dot += v[i] * h[(i, j)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in k + 1..n {
                h[(i, j)] -= f * v[i];
            }
        }
        // Right multiply.
        for i in 0..n {
            let mut dot = 0.0;
            for j in k + 1..n {
                dot += h[(i, j)] * v[j];
            }
            let f = 2.0 * dot / vnorm2;
            for j in k + 1..n {
                h[(i, j)] -= f * v[j];
            }
        }
        // Zero the annihilated entries exactly.
        h[(k + 1, k)] = alpha;
        for i in k + 2..n {
            h[(i, k)] = 0.0;
        }
    }
    h
}

/// Computes all eigenvalues of an upper Hessenberg matrix by the Francis
/// implicit double-shift QR iteration with deflation.
///
/// Returns `n` complex eigenvalues in deflation order. Convergence is
/// robust for the diagonally-dominant-derived matrices this workspace
/// produces; a hard iteration cap guards pathological inputs (remaining
/// eigenvalues then come from the unconverged block's diagonal).
pub fn hessenberg_eigenvalues(h: &Dense) -> Vec<Complex> {
    // Port of the classic EISPACK `hqr` routine (as popularized by
    // Numerical Recipes): implicit double-shift QR with deflation and
    // exceptional shifts every 10 stalled iterations.
    let n = h.nrows();
    assert_eq!(n, h.ncols(), "hessenberg_eigenvalues needs a square matrix");
    if n == 0 {
        return Vec::new();
    }
    let mut a = h.clone();
    let mut wr = vec![0.0f64; n];
    let mut wi = vec![0.0f64; n];

    // Norm of the Hessenberg band (used as scale for deflation tests).
    let mut anorm = 0.0f64;
    for i in 0..n {
        let jlo = i.saturating_sub(1);
        for j in jlo..n {
            anorm += a[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return vec![(0.0, 0.0); n];
    }

    let mut t = 0.0f64;
    let mut nn = n as isize - 1;
    'outer: while nn >= 0 {
        let mut its = 0usize;
        loop {
            // Find l: smallest index with negligible subdiagonal below it.
            let mut l = nn;
            while l >= 1 {
                let s =
                    a[(l as usize - 1, l as usize - 1)].abs() + a[(l as usize, l as usize)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if a[(l as usize, l as usize - 1)].abs() <= f64::EPSILON * s {
                    a[(l as usize, l as usize - 1)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = a[(nn as usize, nn as usize)];
            if l == nn {
                // One real root found.
                wr[nn as usize] = x + t;
                wi[nn as usize] = 0.0;
                nn -= 1;
                continue 'outer;
            }
            let y = a[(nn as usize - 1, nn as usize - 1)];
            let w = a[(nn as usize, nn as usize - 1)] * a[(nn as usize - 1, nn as usize)];
            if l == nn - 1 {
                // Two roots found from the trailing 2×2 block.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x = x + t;
                if q >= 0.0 {
                    let z = p + if p >= 0.0 { z } else { -z };
                    wr[nn as usize - 1] = x + z;
                    wr[nn as usize] = if z != 0.0 { x - w / z } else { x + z };
                    wi[nn as usize - 1] = 0.0;
                    wi[nn as usize] = 0.0;
                } else {
                    wr[nn as usize - 1] = x + p;
                    wr[nn as usize] = x + p;
                    wi[nn as usize - 1] = -z;
                    wi[nn as usize] = z;
                }
                nn -= 2;
                continue 'outer;
            }
            // No root yet: another double-shift iteration.
            if its == 60 {
                // Give up on this block: report its diagonal (never hit by
                // the well-conditioned matrices this workspace produces).
                for i in l..=nn {
                    wr[i as usize] = a[(i as usize, i as usize)] + t;
                    wi[i as usize] = 0.0;
                }
                nn = l - 1;
                continue 'outer;
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
                // Exceptional shift.
                t += x;
                for i in 0..=nn as usize {
                    a[(i, i)] -= x;
                }
                let s = a[(nn as usize, nn as usize - 1)].abs()
                    + a[(nn as usize - 1, nn as usize - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            // Look for two consecutive small subdiagonal elements.
            let mut m = nn - 2;
            let (mut p, mut q, mut r) = (0.0f64, 0.0f64, 0.0f64);
            while m >= l {
                let mu = m as usize;
                let z = a[(mu, mu)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / a[(mu + 1, mu)] + a[(mu, mu + 1)];
                q = a[(mu + 1, mu + 1)] - z - rr - ss;
                r = a[(mu + 2, mu + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = a[(mu, mu - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (a[(mu - 1, mu - 1)].abs() + z.abs() + a[(mu + 1, mu + 1)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
                m -= 1;
            }
            let m = m.max(l) as usize;
            for i in (m + 2)..=(nn as usize) {
                a[(i, i - 2)] = 0.0;
            }
            for i in (m + 3)..=(nn as usize) {
                a[(i, i - 3)] = 0.0;
            }
            // Double QR step on rows l..=nn and columns m..=nn.
            let lu = l as usize;
            let nnu = nn as usize;
            for k in m..nnu {
                // `scale` is NR's `x` at this point: the pre-normalization
                // magnitude used when storing the rotated subdiagonal.
                let mut scale = 0.0f64;
                if k != m {
                    p = a[(k, k - 1)];
                    q = a[(k + 1, k - 1)];
                    r = if k != nnu - 1 { a[(k + 2, k - 1)] } else { 0.0 };
                    scale = p.abs() + q.abs() + r.abs();
                    if scale != 0.0 {
                        p /= scale;
                        q /= scale;
                        r /= scale;
                    }
                }
                let s_mag = (p * p + q * q + r * r).sqrt();
                let s = if p >= 0.0 { s_mag } else { -s_mag };
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if lu != m {
                        a[(k, k - 1)] = -a[(k, k - 1)];
                    }
                } else {
                    a[(k, k - 1)] = -s * scale;
                }
                p += s;
                let xf = p / s;
                let yf = q / s;
                let zf = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nnu {
                    let mut pp = a[(k, j)] + q * a[(k + 1, j)];
                    if k != nnu - 1 {
                        pp += r * a[(k + 2, j)];
                        a[(k + 2, j)] -= pp * zf;
                    }
                    a[(k + 1, j)] -= pp * yf;
                    a[(k, j)] -= pp * xf;
                }
                // Column modification.
                let imax = if nnu < k + 3 { nnu } else { k + 3 };
                for i in lu..=imax {
                    let mut pp = xf * a[(i, k)] + yf * a[(i, k + 1)];
                    if k != nnu - 1 {
                        pp += zf * a[(i, k + 2)];
                        a[(i, k + 2)] -= pp * r;
                    }
                    a[(i, k + 1)] -= pp * q;
                    a[(i, k)] -= pp;
                }
            }
        }
    }
    wr.into_iter().zip(wi).collect()
}

/// Eigenvalues of a general square dense matrix (Hessenberg reduction
/// followed by QR iteration).
pub fn dense_eigenvalues(a: &Dense) -> Vec<Complex> {
    hessenberg_eigenvalues(&to_hessenberg(a))
}

/// Sorts eigenvalues by decreasing modulus (the "top eigenvalues" order of
/// Figure 7).
pub fn sort_by_modulus_desc(eigs: &mut [Complex]) {
    eigs.sort_by(|a, b| {
        let ma = a.0.hypot(a.1);
        let mb = b.0.hypot(b.1);
        mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close_sets(mut got: Vec<Complex>, mut want: Vec<Complex>, tol: f64) {
        sort_by_modulus_desc(&mut got);
        sort_by_modulus_desc(&mut want);
        assert_eq!(got.len(), want.len());
        // Match greedily (handles conjugate-order ambiguity).
        for w in &want {
            let (idx, _) = got
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = (a.0 - w.0).hypot(a.1 - w.1);
                    let db = (b.0 - w.0).hypot(b.1 - w.1);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            let g = got.remove(idx);
            assert!(
                (g.0 - w.0).hypot(g.1 - w.1) < tol,
                "eigenvalue {g:?} vs expected {w:?}"
            );
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Dense::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 0.5]]).unwrap();
        assert_close_sets(
            dense_eigenvalues(&a),
            vec![(3.0, 0.0), (-1.0, 0.0), (0.5, 0.0)],
            1e-10,
        );
    }

    #[test]
    fn symmetric_2x2() {
        // [[2,1],[1,2]] → 1, 3
        let a = Dense::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert_close_sets(dense_eigenvalues(&a), vec![(3.0, 0.0), (1.0, 0.0)], 1e-10);
    }

    #[test]
    fn rotation_has_complex_pair() {
        // 90° rotation → ±i
        let a = Dense::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]).unwrap();
        assert_close_sets(dense_eigenvalues(&a), vec![(0.0, 1.0), (0.0, -1.0)], 1e-10);
    }

    #[test]
    fn companion_matrix_roots() {
        // x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3); companion matrix.
        let a =
            Dense::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        assert_close_sets(
            dense_eigenvalues(&a),
            vec![(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)],
            1e-8,
        );
    }

    #[test]
    fn complex_roots_of_cubic() {
        // x³ − 1 = 0 → 1, e^{±2πi/3}
        let a = Dense::from_rows(&[&[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        let half = 0.5;
        let s3 = 3f64.sqrt() / 2.0;
        assert_close_sets(
            dense_eigenvalues(&a),
            vec![(1.0, 0.0), (-half, s3), (-half, -s3)],
            1e-8,
        );
    }

    #[test]
    fn trace_and_det_invariants_on_random_matrix() {
        // Deterministic pseudo-random 8×8.
        let n = 8;
        let mut a = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = (((i * 31 + j * 17 + 3) % 13) as f64 - 6.0) / 4.0;
            }
        }
        let eigs = dense_eigenvalues(&a);
        assert_eq!(eigs.len(), n);
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let eig_sum: f64 = eigs.iter().map(|e| e.0).sum();
        assert!(
            (tr - eig_sum).abs() < 1e-6,
            "trace {tr} vs eig sum {eig_sum}"
        );
        let imag_sum: f64 = eigs.iter().map(|e| e.1).sum();
        assert!(imag_sum.abs() < 1e-6, "imaginary parts must pair up");
    }

    #[test]
    fn hessenberg_reduction_preserves_similarity() {
        let a = Dense::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap();
        let h = to_hessenberg(&a);
        // Hessenberg structure.
        for i in 2..4 {
            for j in 0..i - 1 {
                assert!(h[(i, j)].abs() < 1e-12, "h[{i}][{j}] = {}", h[(i, j)]);
            }
        }
        // Same trace (similarity invariant).
        let tr_a: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let tr_h: f64 = (0..4).map(|i| h[(i, i)]).sum();
        assert!((tr_a - tr_h).abs() < 1e-10);
        // Same eigenvalue multiset (symmetric matrix → all real).
        let mut ea = dense_eigenvalues(&a);
        let eh = hessenberg_eigenvalues(&h);
        assert_close_sets(std::mem::take(&mut ea), eh, 1e-7);
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = Dense::from_rows(&[&[7.0]]).unwrap();
        assert_eq!(dense_eigenvalues(&a), vec![(7.0, 0.0)]);
        let e = Dense::zeros(0, 0);
        assert!(dense_eigenvalues(&e).is_empty());
    }

    #[test]
    fn moderate_hessenberg_from_stochastic_like_matrix() {
        // Row-stochastic-ish matrix: dominant eigenvalue near 1.
        let n = 12;
        let mut a = Dense::zeros(n, n);
        for i in 0..n {
            let j1 = (i + 1) % n;
            let j2 = (i + 5) % n;
            a[(i, j1)] += 0.6;
            a[(i, j2)] += 0.4;
        }
        let eigs = dense_eigenvalues(&a);
        // Row-stochastic: eigenvalue 1 present, spectral radius 1.
        assert!(
            eigs.iter()
                .any(|e| (e.0 - 1.0).abs() < 1e-8 && e.1.abs() < 1e-8),
            "{eigs:?}"
        );
        assert!(eigs.iter().all(|e| e.0.hypot(e.1) <= 1.0 + 1e-8));
    }
}
